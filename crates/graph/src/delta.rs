//! Dynamic-graph support: a compact mutation overlay for the immutable CSR.
//!
//! [`AttributedGraph`] is deliberately immutable — every algorithm in the workspace
//! relies on its CSR invariants. Real deployments, however, see graphs that *churn*:
//! edges and vertices arrive and leave between queries. [`GraphDelta`] bridges the two
//! worlds: it records a batch of updates **against a fixed base graph** in compact
//! sorted sets, answers "current state" queries (`has_edge`, `is_live`) against the
//! overlay without rebuilding anything, and [`apply`](GraphDelta::apply)s the whole
//! batch into a fresh CSR graph in one `O(n + m)` pass when the owner decides to
//! commit.
//!
//! ## Identity model
//!
//! Vertex ids are **stable**: removing a vertex drops its incident edges and marks the
//! id with a tombstone, but the id stays allocated (in the applied graph the vertex is
//! simply isolated). This keeps every downstream structure — attribute arrays,
//! per-vertex caches, previously reported cliques — valid across updates, and it makes
//! *re-inserting a previously deleted vertex id* ([`restore_vertex`]) a first-class,
//! cheap operation. New vertices are appended at the end of the id space. Isolated
//! vertices can never participate in a fair clique (every fairness model requires at
//! least two vertices), so tombstones are invisible to the solvers.
//!
//! ## Invariants
//!
//! The overlay maintains, by construction:
//!
//! * `inserted ∩ base_edges = ∅` — re-inserting a base edge that was removed earlier
//!   in the batch just cancels the removal;
//! * `dropped ⊆ base_edges` — removing an edge inserted earlier in the batch just
//!   cancels the insertion;
//! * no recorded edge touches a tombstoned vertex — [`remove_vertex`] materializes the
//!   removal of every incident edge, so [`apply`](GraphDelta::apply) is a pure set merge.
//!
//! [`restore_vertex`]: GraphDelta::restore_vertex
//! [`remove_vertex`]: GraphDelta::remove_vertex

use std::collections::{BTreeMap, BTreeSet};

use crate::attr::Attribute;
use crate::graph::{AttributedGraph, VertexId};
use crate::json::JsonValue;

/// Errors reported by the [`GraphDelta`] mutation methods.
///
/// The API is strict on purpose: redundant operations (inserting an edge that already
/// exists, removing one that doesn't) are reported instead of silently ignored, so
/// update streams that drift out of sync with the graph are caught at the first bad
/// op rather than corrupting differential comparisons later.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaError {
    /// A vertex id beyond the current vertex space (base + appended).
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: VertexId,
        /// The current vertex-space size.
        num_vertices: usize,
    },
    /// The operation touches a tombstoned (removed) vertex.
    VertexRemoved {
        /// The removed vertex id.
        vertex: VertexId,
    },
    /// [`GraphDelta::restore_vertex`] targeted a vertex that is live.
    VertexNotRemoved {
        /// The live vertex id.
        vertex: VertexId,
    },
    /// An edge operation named the same vertex twice.
    SelfLoop {
        /// The vertex id.
        vertex: VertexId,
    },
    /// [`GraphDelta::insert_edge`] of an edge that is already present.
    EdgeExists {
        /// Canonical smaller endpoint.
        u: VertexId,
        /// Canonical larger endpoint.
        v: VertexId,
    },
    /// [`GraphDelta::remove_edge`] of an edge that is not present.
    EdgeMissing {
        /// Canonical smaller endpoint.
        u: VertexId,
        /// Canonical larger endpoint.
        v: VertexId,
    },
    /// [`UpdateOp::Commit`] was handed to [`GraphDelta::apply_op`]; batch boundaries
    /// are for the owner of the delta (e.g. `DynamicRfcSolver`) to interpret.
    NotAGraphOp,
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            DeltaError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex {vertex} out of range for a graph with {num_vertices} vertices"
            ),
            DeltaError::VertexRemoved { vertex } => {
                write!(f, "vertex {vertex} has been removed (restore it first)")
            }
            DeltaError::VertexNotRemoved { vertex } => {
                write!(f, "vertex {vertex} is live and cannot be restored")
            }
            DeltaError::SelfLoop { vertex } => write!(f, "self-loop at vertex {vertex}"),
            DeltaError::EdgeExists { u, v } => write!(f, "edge ({u}, {v}) already exists"),
            DeltaError::EdgeMissing { u, v } => write!(f, "edge ({u}, {v}) does not exist"),
            DeltaError::NotAGraphOp => {
                write!(f, "`commit` is a batch boundary, not a graph mutation")
            }
        }
    }
}

impl std::error::Error for DeltaError {}

/// One serializable graph update, the unit of the JSONL update-stream format.
///
/// A stream is a sequence of ops with [`Commit`](UpdateOp::Commit) markers as batch
/// boundaries; `rfc-datasets` generates such streams and the `maxfairclique update`
/// subcommand replays them. The JSONL rendering is one object per line:
///
/// ```text
/// {"op":"insert_edge","u":3,"v":9}
/// {"op":"remove_edge","u":0,"v":1}
/// {"op":"insert_vertex","attr":"a"}
/// {"op":"restore_vertex","v":4,"attr":"b"}
/// {"op":"remove_vertex","v":7}
/// {"op":"commit"}
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateOp {
    /// Insert the undirected edge `(u, v)`.
    InsertEdge {
        /// One endpoint.
        u: VertexId,
        /// The other endpoint.
        v: VertexId,
    },
    /// Remove the undirected edge `(u, v)`.
    RemoveEdge {
        /// One endpoint.
        u: VertexId,
        /// The other endpoint.
        v: VertexId,
    },
    /// Append a new vertex with the given attribute (its id is the next free one).
    InsertVertex {
        /// Attribute of the new vertex.
        attr: Attribute,
    },
    /// Re-insert a previously removed vertex id with the given attribute.
    RestoreVertex {
        /// The tombstoned vertex id to revive.
        v: VertexId,
        /// Attribute the vertex comes back with.
        attr: Attribute,
    },
    /// Remove a vertex: drop all its incident edges and tombstone the id.
    RemoveVertex {
        /// The vertex id to remove.
        v: VertexId,
    },
    /// Batch boundary: the replayer should commit everything seen since the last
    /// boundary and re-solve.
    Commit,
}

impl UpdateOp {
    /// Renders this op as one JSONL line (without a trailing newline).
    pub fn to_jsonl(&self) -> String {
        fn attr_name(attr: Attribute) -> &'static str {
            match attr {
                Attribute::A => "a",
                Attribute::B => "b",
            }
        }
        match *self {
            UpdateOp::InsertEdge { u, v } => {
                format!("{{\"op\":\"insert_edge\",\"u\":{u},\"v\":{v}}}")
            }
            UpdateOp::RemoveEdge { u, v } => {
                format!("{{\"op\":\"remove_edge\",\"u\":{u},\"v\":{v}}}")
            }
            UpdateOp::InsertVertex { attr } => {
                format!(
                    "{{\"op\":\"insert_vertex\",\"attr\":\"{}\"}}",
                    attr_name(attr)
                )
            }
            UpdateOp::RestoreVertex { v, attr } => format!(
                "{{\"op\":\"restore_vertex\",\"v\":{v},\"attr\":\"{}\"}}",
                attr_name(attr)
            ),
            UpdateOp::RemoveVertex { v } => format!("{{\"op\":\"remove_vertex\",\"v\":{v}}}"),
            UpdateOp::Commit => "{\"op\":\"commit\"}".to_string(),
        }
    }

    /// Parses one JSONL line (as produced by [`to_jsonl`](UpdateOp::to_jsonl)) through
    /// the shared [`crate::json`] parser.
    pub fn parse_jsonl(line: &str) -> Result<UpdateOp, String> {
        let value = JsonValue::parse(line).map_err(|e| format!("{e} in `{}`", line.trim()))?;
        Self::from_json(&value)
    }

    /// Interprets an already-parsed [`JsonValue`] object as an update op. This is the
    /// entry point protocol code uses when ops arrive nested inside a larger request
    /// document (e.g. the `rfc-serve` `update` request carries an array of them).
    pub fn from_json(value: &JsonValue) -> Result<UpdateOp, String> {
        let op = value
            .get("op")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("missing \"op\" field in `{value}`"))?;
        let vertex = |key: &str| -> Result<VertexId, String> {
            value
                .get(key)
                .and_then(JsonValue::as_u64)
                .and_then(|n| VertexId::try_from(n).ok())
                .ok_or_else(|| format!("missing numeric \"{key}\" field in `{value}`"))
        };
        let attr = || -> Result<Attribute, String> {
            let name = value
                .get("attr")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("missing \"attr\" field in `{value}`"))?;
            Attribute::parse(name).ok_or_else(|| format!("unknown attribute `{name}`"))
        };
        match op {
            "insert_edge" => Ok(UpdateOp::InsertEdge {
                u: vertex("u")?,
                v: vertex("v")?,
            }),
            "remove_edge" => Ok(UpdateOp::RemoveEdge {
                u: vertex("u")?,
                v: vertex("v")?,
            }),
            "insert_vertex" => Ok(UpdateOp::InsertVertex { attr: attr()? }),
            "restore_vertex" => Ok(UpdateOp::RestoreVertex {
                v: vertex("v")?,
                attr: attr()?,
            }),
            "remove_vertex" => Ok(UpdateOp::RemoveVertex { v: vertex("v")? }),
            "commit" => Ok(UpdateOp::Commit),
            other => Err(format!("unknown update op `{other}`")),
        }
    }

    /// Renders this op as a [`JsonValue`] object (the same shape
    /// [`to_jsonl`](UpdateOp::to_jsonl) prints).
    pub fn to_json(&self) -> JsonValue {
        fn attr_name(attr: Attribute) -> &'static str {
            match attr {
                Attribute::A => "a",
                Attribute::B => "b",
            }
        }
        match *self {
            UpdateOp::InsertEdge { u, v } => JsonValue::object(vec![
                ("op", JsonValue::string("insert_edge")),
                ("u", JsonValue::from(u)),
                ("v", JsonValue::from(v)),
            ]),
            UpdateOp::RemoveEdge { u, v } => JsonValue::object(vec![
                ("op", JsonValue::string("remove_edge")),
                ("u", JsonValue::from(u)),
                ("v", JsonValue::from(v)),
            ]),
            UpdateOp::InsertVertex { attr } => JsonValue::object(vec![
                ("op", JsonValue::string("insert_vertex")),
                ("attr", JsonValue::string(attr_name(attr))),
            ]),
            UpdateOp::RestoreVertex { v, attr } => JsonValue::object(vec![
                ("op", JsonValue::string("restore_vertex")),
                ("v", JsonValue::from(v)),
                ("attr", JsonValue::string(attr_name(attr))),
            ]),
            UpdateOp::RemoveVertex { v } => JsonValue::object(vec![
                ("op", JsonValue::string("remove_vertex")),
                ("v", JsonValue::from(v)),
            ]),
            UpdateOp::Commit => JsonValue::object(vec![("op", JsonValue::string("commit"))]),
        }
    }
}

/// A batch of vertex/edge updates recorded against one base [`AttributedGraph`].
///
/// All mutation methods take the base graph so they can validate against the *current*
/// overlaid state; the base must be the same graph for the delta's whole lifetime
/// (the owner — e.g. `DynamicRfcSolver` — guarantees this by replacing the delta at
/// every commit). See the [module docs](self) for the identity model and invariants.
#[derive(Debug, Clone, Default)]
pub struct GraphDelta {
    /// Attributes of appended vertices; vertex `base_n + i` has `appended[i]`.
    appended: Vec<Attribute>,
    /// Ids tombstoned by *earlier* batches (already isolated in the base graph).
    /// They gate liveness exactly like `removed`, but are not part of this batch's
    /// net change; see [`GraphDelta::with_tombstones`].
    pre_removed: BTreeSet<VertexId>,
    /// Tombstoned vertex ids (their edges are materialized into `dropped`/`inserted`).
    removed: BTreeSet<VertexId>,
    /// Attribute overrides from [`GraphDelta::restore_vertex`].
    overrides: BTreeMap<VertexId, Attribute>,
    /// Inserted edges (canonical `u < v`), disjoint from the base edge set.
    inserted: BTreeSet<(VertexId, VertexId)>,
    /// Removed base edges (canonical `u < v`), a subset of the base edge set.
    dropped: BTreeSet<(VertexId, VertexId)>,
    /// Every vertex an operation touched (endpoints of changed edges, removed /
    /// restored / appended vertices) — the conservative invalidation frontier.
    touched: BTreeSet<VertexId>,
}

impl GraphDelta {
    /// An empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty delta that starts with the given ids tombstoned.
    ///
    /// The tombstone state of removed-but-not-restored vertices has to survive from
    /// one batch to the next (the applied CSR graph only shows them as isolated), so
    /// a dynamic solver seeds each fresh delta with [`tombstones`](Self::tombstones)
    /// of the previous one. Seeded tombstones gate liveness and can be
    /// [`restore_vertex`](Self::restore_vertex)d, but do not count as changes of the
    /// new batch.
    pub fn with_tombstones(pre_removed: BTreeSet<VertexId>) -> Self {
        Self {
            pre_removed,
            ..Self::default()
        }
    }

    /// Every id that is tombstoned as of this batch — seeded ones plus this batch's
    /// removals, minus restores. Feed this into [`with_tombstones`](Self::with_tombstones)
    /// for the next batch after applying this one.
    pub fn tombstones(&self) -> BTreeSet<VertexId> {
        self.pre_removed.union(&self.removed).copied().collect()
    }

    /// Whether the delta describes no net structural change. (Operations that cancel
    /// out — an insert followed by a remove of the same edge — leave the delta empty
    /// again, though the touched-vertex set keeps the conservative record.)
    pub fn is_empty(&self) -> bool {
        self.appended.is_empty()
            && self.removed.is_empty()
            && self.overrides.is_empty()
            && self.inserted.is_empty()
            && self.dropped.is_empty()
    }

    /// Current vertex-space size: base vertices plus appended ones.
    pub fn num_vertices(&self, base: &AttributedGraph) -> usize {
        base.num_vertices() + self.appended.len()
    }

    /// Whether `v` is a live (in-range, not tombstoned) vertex of the overlaid graph.
    pub fn is_live(&self, base: &AttributedGraph, v: VertexId) -> bool {
        (v as usize) < self.num_vertices(base)
            && !self.removed.contains(&v)
            && !self.pre_removed.contains(&v)
    }

    /// The overlaid attribute of `v` (override > appended > base).
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn attribute(&self, base: &AttributedGraph, v: VertexId) -> Attribute {
        if let Some(&attr) = self.overrides.get(&v) {
            return attr;
        }
        let n = base.num_vertices();
        if (v as usize) < n {
            base.attribute(v)
        } else {
            self.appended[v as usize - n]
        }
    }

    /// Whether the overlaid graph currently has the edge `(u, v)`.
    pub fn has_edge(&self, base: &AttributedGraph, u: VertexId, v: VertexId) -> bool {
        if u == v || !self.is_live(base, u) || !self.is_live(base, v) {
            return false;
        }
        let key = canonical(u, v);
        if self.inserted.contains(&key) {
            return true;
        }
        let n = base.num_vertices() as VertexId;
        u < n && v < n && base.has_edge(u, v) && !self.dropped.contains(&key)
    }

    /// Whether the delta contains any edge insertions. Edge insertions are the one
    /// update class that can *revive* reduced-away vertices, so they always invalidate
    /// cached reduced graphs; pure removals and vertex-space changes cannot (see
    /// `rfc_core::dynamic` for the soundness argument).
    pub fn has_edge_insertions(&self) -> bool {
        !self.inserted.is_empty()
    }

    /// Whether the delta changes any vertex attribute or grows the vertex space —
    /// i.e. whether a kept reduced graph needs its attribute/vertex arrays refreshed.
    pub fn changes_vertex_space(&self) -> bool {
        !self.appended.is_empty() || !self.overrides.is_empty()
    }

    /// The removed base edges (canonical order), including those materialized by
    /// vertex removals.
    pub fn dropped_edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.dropped.iter().copied()
    }

    /// The inserted edges (canonical order).
    pub fn inserted_edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.inserted.iter().copied()
    }

    /// Every vertex the batch touched, in increasing id order: endpoints of every
    /// changed edge plus removed, restored and appended vertices. This is the
    /// invalidation frontier a dynamic solver has to consider dirty.
    pub fn changed_vertices(&self) -> Vec<VertexId> {
        self.touched.iter().copied().collect()
    }

    fn check_live(&self, base: &AttributedGraph, v: VertexId) -> Result<(), DeltaError> {
        let n = self.num_vertices(base);
        if (v as usize) >= n {
            return Err(DeltaError::VertexOutOfRange {
                vertex: v,
                num_vertices: n,
            });
        }
        if self.removed.contains(&v) || self.pre_removed.contains(&v) {
            return Err(DeltaError::VertexRemoved { vertex: v });
        }
        Ok(())
    }

    /// Records the insertion of edge `(u, v)`. Both endpoints must be live and the
    /// edge must be absent.
    pub fn insert_edge(
        &mut self,
        base: &AttributedGraph,
        u: VertexId,
        v: VertexId,
    ) -> Result<(), DeltaError> {
        if u == v {
            return Err(DeltaError::SelfLoop { vertex: u });
        }
        self.check_live(base, u)?;
        self.check_live(base, v)?;
        let key = canonical(u, v);
        if self.has_edge(base, u, v) {
            return Err(DeltaError::EdgeExists { u: key.0, v: key.1 });
        }
        let n = base.num_vertices() as VertexId;
        if u < n && v < n && base.has_edge(u, v) {
            // Base edge removed earlier in the batch: cancel the removal.
            self.dropped.remove(&key);
        } else {
            self.inserted.insert(key);
        }
        self.touched.insert(u);
        self.touched.insert(v);
        Ok(())
    }

    /// Records the removal of edge `(u, v)`. Both endpoints must be live and the edge
    /// must be present.
    pub fn remove_edge(
        &mut self,
        base: &AttributedGraph,
        u: VertexId,
        v: VertexId,
    ) -> Result<(), DeltaError> {
        if u == v {
            return Err(DeltaError::SelfLoop { vertex: u });
        }
        self.check_live(base, u)?;
        self.check_live(base, v)?;
        let key = canonical(u, v);
        if !self.has_edge(base, u, v) {
            return Err(DeltaError::EdgeMissing { u: key.0, v: key.1 });
        }
        if !self.inserted.remove(&key) {
            self.dropped.insert(key);
        }
        self.touched.insert(u);
        self.touched.insert(v);
        Ok(())
    }

    /// Appends a new vertex with the given attribute and returns its id.
    pub fn insert_vertex(&mut self, base: &AttributedGraph, attr: Attribute) -> VertexId {
        let id = self.num_vertices(base) as VertexId;
        self.appended.push(attr);
        self.touched.insert(id);
        id
    }

    /// Re-inserts a tombstoned vertex id with the given attribute. The vertex comes
    /// back isolated; its former edges were dropped by the removal.
    pub fn restore_vertex(
        &mut self,
        base: &AttributedGraph,
        v: VertexId,
        attr: Attribute,
    ) -> Result<(), DeltaError> {
        let n = self.num_vertices(base);
        if (v as usize) >= n {
            return Err(DeltaError::VertexOutOfRange {
                vertex: v,
                num_vertices: n,
            });
        }
        if !self.removed.remove(&v) && !self.pre_removed.remove(&v) {
            return Err(DeltaError::VertexNotRemoved { vertex: v });
        }
        if (v as usize) < base.num_vertices() {
            self.overrides.insert(v, attr);
        } else {
            self.appended[v as usize - base.num_vertices()] = attr;
        }
        self.touched.insert(v);
        Ok(())
    }

    /// Removes a live vertex: every currently incident edge is dropped (their far
    /// endpoints count as touched) and the id is tombstoned.
    pub fn remove_vertex(&mut self, base: &AttributedGraph, v: VertexId) -> Result<(), DeltaError> {
        self.check_live(base, v)?;
        // Materialize the removal of incident base edges…
        if (v as usize) < base.num_vertices() {
            for &w in base.neighbors(v) {
                let key = canonical(v, w);
                if !self.dropped.contains(&key) && self.has_edge(base, v, w) {
                    self.dropped.insert(key);
                    self.touched.insert(w);
                }
            }
        }
        // …and of in-batch inserted edges.
        let incident: Vec<(VertexId, VertexId)> = self
            .inserted
            .iter()
            .copied()
            .filter(|&(a, b)| a == v || b == v)
            .collect();
        for key in incident {
            self.inserted.remove(&key);
            self.touched.insert(if key.0 == v { key.1 } else { key.0 });
        }
        self.removed.insert(v);
        self.touched.insert(v);
        Ok(())
    }

    /// Applies one [`UpdateOp`] to the overlay. Returns the new vertex id for
    /// [`UpdateOp::InsertVertex`] and `None` otherwise; [`UpdateOp::Commit`] is
    /// rejected with [`DeltaError::NotAGraphOp`] — batch boundaries belong to the
    /// delta's owner.
    pub fn apply_op(
        &mut self,
        base: &AttributedGraph,
        op: &UpdateOp,
    ) -> Result<Option<VertexId>, DeltaError> {
        match *op {
            UpdateOp::InsertEdge { u, v } => self.insert_edge(base, u, v).map(|()| None),
            UpdateOp::RemoveEdge { u, v } => self.remove_edge(base, u, v).map(|()| None),
            UpdateOp::InsertVertex { attr } => Ok(Some(self.insert_vertex(base, attr))),
            UpdateOp::RestoreVertex { v, attr } => {
                self.restore_vertex(base, v, attr).map(|()| None)
            }
            UpdateOp::RemoveVertex { v } => self.remove_vertex(base, v).map(|()| None),
            UpdateOp::Commit => Err(DeltaError::NotAGraphOp),
        }
    }

    /// Rebuilds the overlaid graph as a fresh immutable CSR [`AttributedGraph`]:
    /// base attributes with overrides plus appended vertices, and the base edge list
    /// minus the dropped edges merged with the inserted ones. `O(n + m)` — both edge
    /// sets are already canonical and sorted, so this is a pure merge with no
    /// re-sorting.
    pub fn apply(&self, base: &AttributedGraph) -> AttributedGraph {
        let mut attributes = Vec::with_capacity(self.num_vertices(base));
        attributes.extend_from_slice(base.attributes());
        attributes.extend_from_slice(&self.appended);
        for (&v, &attr) in &self.overrides {
            attributes[v as usize] = attr;
        }

        let mut edges =
            Vec::with_capacity(base.num_edges() - self.dropped.len() + self.inserted.len());
        let mut kept = base
            .edge_list()
            .iter()
            .copied()
            .filter(|key| !self.dropped.contains(key))
            .peekable();
        let mut added = self.inserted.iter().copied().peekable();
        loop {
            match (kept.peek(), added.peek()) {
                (Some(&a), Some(&b)) => {
                    if a < b {
                        edges.push(a);
                        kept.next();
                    } else {
                        edges.push(b);
                        added.next();
                    }
                }
                (Some(_), None) => {
                    edges.extend(kept);
                    break;
                }
                (None, Some(_)) => {
                    edges.extend(added);
                    break;
                }
                (None, None) => break,
            }
        }
        AttributedGraph::from_parts(attributes, edges)
    }
}

#[inline]
fn canonical(u: VertexId, v: VertexId) -> (VertexId, VertexId) {
    (u.min(v), u.max(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::fixtures;

    fn small() -> AttributedGraph {
        // Balanced K4 (0..4) plus pendant 4 on vertex 3.
        let mut b = GraphBuilder::new(5);
        b.set_attribute(1, Attribute::B);
        b.set_attribute(3, Attribute::B);
        b.add_edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4)]);
        b.build().unwrap()
    }

    #[test]
    fn edge_insert_and_remove_round_trip() {
        let g = small();
        let mut d = GraphDelta::new();
        assert!(d.is_empty());
        assert!(!d.has_edge(&g, 1, 4));
        d.insert_edge(&g, 4, 1).unwrap();
        assert!(d.has_edge(&g, 1, 4));
        assert_eq!(
            d.insert_edge(&g, 1, 4),
            Err(DeltaError::EdgeExists { u: 1, v: 4 })
        );
        d.remove_edge(&g, 0, 1).unwrap();
        assert!(!d.has_edge(&g, 0, 1));
        assert_eq!(
            d.remove_edge(&g, 1, 0),
            Err(DeltaError::EdgeMissing { u: 0, v: 1 })
        );
        assert_eq!(d.changed_vertices(), vec![0, 1, 4]);
        let applied = d.apply(&g);
        assert_eq!(applied.num_vertices(), 5);
        assert_eq!(applied.num_edges(), g.num_edges()); // one in, one out
        assert!(applied.has_edge(1, 4));
        assert!(!applied.has_edge(0, 1));
    }

    #[test]
    fn cancelling_ops_leave_the_delta_empty() {
        let g = small();
        let mut d = GraphDelta::new();
        d.remove_edge(&g, 0, 1).unwrap();
        d.insert_edge(&g, 0, 1).unwrap(); // cancels the removal of a base edge
        d.insert_edge(&g, 1, 4).unwrap();
        d.remove_edge(&g, 1, 4).unwrap(); // cancels the in-batch insertion
        assert!(d.is_empty());
        assert!(!d.has_edge_insertions());
        assert_eq!(d.apply(&g), g);
        // The touched set stays conservative.
        assert_eq!(d.changed_vertices(), vec![0, 1, 4]);
    }

    #[test]
    fn vertex_removal_materializes_incident_edges() {
        let g = small();
        let mut d = GraphDelta::new();
        d.insert_edge(&g, 2, 4).unwrap();
        d.remove_vertex(&g, 3).unwrap();
        assert!(!d.is_live(&g, 3));
        assert!(!d.has_edge(&g, 3, 4));
        assert!(d.has_edge(&g, 2, 4));
        assert_eq!(
            d.insert_edge(&g, 3, 4),
            Err(DeltaError::VertexRemoved { vertex: 3 })
        );
        assert_eq!(
            d.remove_vertex(&g, 3),
            Err(DeltaError::VertexRemoved { vertex: 3 })
        );
        let dropped: Vec<_> = d.dropped_edges().collect();
        assert_eq!(dropped, vec![(0, 3), (1, 3), (2, 3), (3, 4)]);
        let applied = d.apply(&g);
        assert_eq!(applied.degree(3), 0);
        assert_eq!(applied.num_edges(), 4); // K3 on {0,1,2} plus (2,4)
                                            // Removing a vertex also removes in-batch inserted edges touching it.
        let mut d2 = GraphDelta::new();
        d2.insert_edge(&g, 2, 4).unwrap();
        d2.remove_vertex(&g, 4).unwrap();
        assert!(!d2.has_edge_insertions());
        assert_eq!(d2.apply(&g).num_edges(), 6);
    }

    #[test]
    fn restore_vertex_revives_a_tombstoned_id() {
        let g = small();
        let mut d = GraphDelta::new();
        assert_eq!(
            d.restore_vertex(&g, 3, Attribute::A),
            Err(DeltaError::VertexNotRemoved { vertex: 3 })
        );
        d.remove_vertex(&g, 3).unwrap();
        d.restore_vertex(&g, 3, Attribute::A).unwrap();
        assert!(d.is_live(&g, 3));
        assert_eq!(d.attribute(&g, 3), Attribute::A); // was B
                                                      // The vertex comes back isolated; its old edges stay dropped.
        assert!(!d.has_edge(&g, 3, 4));
        d.insert_edge(&g, 3, 4).unwrap();
        let applied = d.apply(&g);
        assert_eq!(applied.attribute(3), Attribute::A);
        assert_eq!(applied.degree(3), 1);
        assert!(applied.has_edge(3, 4));
    }

    #[test]
    fn appended_vertices_extend_the_id_space() {
        let g = small();
        let mut d = GraphDelta::new();
        let v5 = d.insert_vertex(&g, Attribute::B);
        let v6 = d.insert_vertex(&g, Attribute::A);
        assert_eq!((v5, v6), (5, 6));
        assert_eq!(d.num_vertices(&g), 7);
        assert_eq!(d.attribute(&g, 6), Attribute::A);
        d.insert_edge(&g, 5, 6).unwrap();
        d.insert_edge(&g, 0, 5).unwrap();
        assert_eq!(
            d.insert_edge(&g, 0, 7),
            Err(DeltaError::VertexOutOfRange {
                vertex: 7,
                num_vertices: 7
            })
        );
        // Appended vertices can be removed and restored like base ones.
        d.remove_vertex(&g, 6).unwrap();
        assert!(!d.is_live(&g, 6));
        d.restore_vertex(&g, 6, Attribute::B).unwrap();
        assert_eq!(d.attribute(&g, 6), Attribute::B);
        let applied = d.apply(&g);
        assert_eq!(applied.num_vertices(), 7);
        assert!(applied.has_edge(0, 5));
        assert_eq!(applied.degree(6), 0);
        assert_eq!(applied.attribute(6), Attribute::B);
    }

    #[test]
    fn self_loops_are_rejected() {
        let g = small();
        let mut d = GraphDelta::new();
        assert_eq!(
            d.insert_edge(&g, 2, 2),
            Err(DeltaError::SelfLoop { vertex: 2 })
        );
        assert_eq!(
            d.remove_edge(&g, 2, 2),
            Err(DeltaError::SelfLoop { vertex: 2 })
        );
    }

    #[test]
    fn apply_matches_a_from_scratch_rebuild() {
        let g = fixtures::fig1_graph();
        let mut d = GraphDelta::new();
        d.remove_edge(&g, 0, 1).unwrap();
        d.remove_vertex(&g, 14).unwrap();
        let fresh = d.insert_vertex(&g, Attribute::A);
        d.insert_edge(&g, fresh, 6).unwrap();
        d.insert_edge(&g, fresh, 7).unwrap();
        let applied = d.apply(&g);

        // Reference: rebuild through the forgiving GraphBuilder.
        let mut attrs = g.attributes().to_vec();
        attrs.push(Attribute::A);
        let mut b = GraphBuilder::with_attributes(attrs);
        for &(u, v) in g.edge_list() {
            if (u, v) != (0, 1) && u != 14 && v != 14 {
                b.add_edge(u, v);
            }
        }
        b.add_edge(fresh, 6);
        b.add_edge(fresh, 7);
        assert_eq!(applied, b.build().unwrap());
    }

    #[test]
    fn update_op_jsonl_round_trip() {
        let ops = [
            UpdateOp::InsertEdge { u: 3, v: 9 },
            UpdateOp::RemoveEdge { u: 0, v: 1 },
            UpdateOp::InsertVertex { attr: Attribute::A },
            UpdateOp::RestoreVertex {
                v: 4,
                attr: Attribute::B,
            },
            UpdateOp::RemoveVertex { v: 7 },
            UpdateOp::Commit,
        ];
        for op in ops {
            let line = op.to_jsonl();
            assert_eq!(UpdateOp::parse_jsonl(&line), Ok(op), "{line}");
            // The JsonValue rendering matches the legacy string rendering exactly.
            assert_eq!(op.to_json().to_string(), line);
            assert_eq!(UpdateOp::from_json(&op.to_json()), Ok(op));
        }
        // Whitespace tolerance.
        assert_eq!(
            UpdateOp::parse_jsonl("{ \"op\" : \"insert_edge\", \"u\" : 12, \"v\" : 5 }"),
            Ok(UpdateOp::InsertEdge { u: 12, v: 5 })
        );
        assert!(UpdateOp::parse_jsonl("{\"op\":\"explode\"}").is_err());
        assert!(UpdateOp::parse_jsonl("{\"op\":\"insert_edge\",\"u\":1}").is_err());
        assert!(UpdateOp::parse_jsonl("{\"op\":\"insert_vertex\",\"attr\":\"q\"}").is_err());
        assert!(UpdateOp::parse_jsonl("not json").is_err());
    }

    #[test]
    fn apply_op_dispatches_and_rejects_commit() {
        let g = small();
        let mut d = GraphDelta::new();
        assert_eq!(
            d.apply_op(&g, &UpdateOp::InsertVertex { attr: Attribute::A }),
            Ok(Some(5))
        );
        assert_eq!(
            d.apply_op(&g, &UpdateOp::InsertEdge { u: 5, v: 0 }),
            Ok(None)
        );
        assert_eq!(d.apply_op(&g, &UpdateOp::RemoveVertex { v: 4 }), Ok(None));
        assert_eq!(
            d.apply_op(&g, &UpdateOp::Commit),
            Err(DeltaError::NotAGraphOp)
        );
        let applied = d.apply(&g);
        assert!(applied.has_edge(0, 5));
        assert_eq!(applied.degree(4), 0);
    }

    #[test]
    fn errors_render_helpfully() {
        for (err, needle) in [
            (
                DeltaError::VertexOutOfRange {
                    vertex: 9,
                    num_vertices: 4,
                },
                "out of range",
            ),
            (DeltaError::VertexRemoved { vertex: 2 }, "removed"),
            (DeltaError::VertexNotRemoved { vertex: 2 }, "live"),
            (DeltaError::SelfLoop { vertex: 1 }, "self-loop"),
            (DeltaError::EdgeExists { u: 0, v: 1 }, "already exists"),
            (DeltaError::EdgeMissing { u: 0, v: 1 }, "does not exist"),
            (DeltaError::NotAGraphOp, "batch boundary"),
        ] {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }
}
