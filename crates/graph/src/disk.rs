//! The `.rfcg` binary on-disk CSR format and its streaming writer/reader.
//!
//! The scale tier stores multi-million-vertex attributed graphs in a flat
//! little-endian layout that can be written without ever materializing the full
//! graph in memory and read back either streamed (neighbor lists stay on disk,
//! fetched by sequential scans or targeted seeks) or fully resident:
//!
//! ```text
//! offset 0   magic      b"RFCG"                     (4 bytes)
//! offset 4   version    u32 = 1
//! offset 8   n          u64   number of vertices
//! offset 16  m          u64   number of undirected edges
//! offset 24  offsets    (n + 1) × u64               entry index into `neighbors`
//! …          neighbors  2m × u32                    sorted adjacency, both directions
//! …          attributes n × u8                      0 = a, 1 = b
//! ```
//!
//! Three layers are provided, lowest first:
//!
//! * [`CsrWriter`] — push vertices **in id order** with their full sorted neighbor
//!   list; neighbor entries stream straight to disk, only the running offset table
//!   (8 bytes/vertex) and attribute bytes stay in memory.
//! * [`EdgeSpool`] — an out-of-core CSR builder for producers that discover edges
//!   in arbitrary order (generators, converters): edges spill to a temporary binary
//!   file while only a degree counter per vertex stays resident; [`EdgeSpool::assemble`]
//!   then builds the final `.rfcg` in vertex-ordered chunks, so peak memory is one
//!   chunk of adjacency (configurable), never the whole edge list.
//! * [`DiskCsr`] — the reader, implementing [`GraphStore`]: header, offsets and
//!   attributes are resident (17 bytes/vertex), neighbor lists are served from disk
//!   through buffered sequential scans or, with [`DiskCsr::open_resident`], from one
//!   fully loaded in-memory section.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::attr::Attribute;
use crate::graph::{AttributedGraph, VertexId};
use crate::store::GraphStore;

/// Magic bytes opening every `.rfcg` file.
pub const RFCG_MAGIC: [u8; 4] = *b"RFCG";

/// Current format version.
pub const RFCG_VERSION: u32 = 1;

/// Size of the fixed header (magic, version, `n`, `m`).
const HEADER_BYTES: u64 = 24;

/// Errors arising while reading or writing `.rfcg` files.
#[derive(Debug)]
pub enum RfcgError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structurally invalid data (bad magic, wrong version, truncation, unsorted
    /// or out-of-range neighbor lists, duplicate edges, …).
    Format(String),
}

impl std::fmt::Display for RfcgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RfcgError::Io(e) => write!(f, "I/O error: {e}"),
            RfcgError::Format(msg) => write!(f, "invalid .rfcg data: {msg}"),
        }
    }
}

impl std::error::Error for RfcgError {}

impl From<io::Error> for RfcgError {
    fn from(e: io::Error) -> Self {
        RfcgError::Io(e)
    }
}

fn format_err<T>(msg: impl Into<String>) -> Result<T, RfcgError> {
    Err(RfcgError::Format(msg.into()))
}

/// Counts reported by a successful [`CsrWriter::finish`] / [`EdgeSpool::assemble`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsrSummary {
    /// Number of vertices written.
    pub num_vertices: usize,
    /// Number of undirected edges written.
    pub num_edges: usize,
    /// Total file size in bytes.
    pub file_bytes: u64,
}

/// Streaming `.rfcg` writer: vertices are pushed in id order with their complete
/// sorted neighbor lists, and neighbor entries go straight to disk.
///
/// Only the running offset table (`(n + 1) × 8` bytes) and the attribute bytes
/// (`n`) stay in memory, so writing a graph costs O(n) resident memory regardless
/// of the edge count. Callers that cannot produce adjacency in vertex order should
/// go through [`EdgeSpool`] instead.
#[derive(Debug)]
pub struct CsrWriter {
    file: BufWriter<File>,
    n: usize,
    offsets: Vec<u64>,
    attrs: Vec<u8>,
    encode_buf: Vec<u8>,
}

impl CsrWriter {
    /// Creates the output file and positions the write cursor past the (still
    /// unwritten) offset table, ready to stream neighbor entries.
    pub fn create<P: AsRef<Path>>(path: P, num_vertices: usize) -> Result<Self, RfcgError> {
        if num_vertices > u32::MAX as usize {
            return format_err(format!(
                "{num_vertices} vertices exceed the u32 vertex-id space"
            ));
        }
        let mut file = File::create(path)?;
        // Header and offsets are back-filled by `finish`; seeking past them keeps
        // the writer purely sequential for the big section.
        file.seek(SeekFrom::Start(
            HEADER_BYTES + (num_vertices as u64 + 1) * 8,
        ))?;
        let mut offsets = Vec::with_capacity(num_vertices + 1);
        offsets.push(0);
        Ok(Self {
            file: BufWriter::with_capacity(1 << 20, file),
            n: num_vertices,
            offsets,
            attrs: Vec::with_capacity(num_vertices),
            encode_buf: Vec::new(),
        })
    }

    /// Number of vertices pushed so far — also the id the next push receives.
    pub fn pushed(&self) -> usize {
        self.attrs.len()
    }

    /// Appends the next vertex (id [`Self::pushed`]) with its attribute and full
    /// sorted neighbor list. The list must be strictly ascending, in range, and
    /// free of self-loops; every undirected edge must eventually appear in both
    /// endpoint lists.
    pub fn push_vertex(
        &mut self,
        attr: Attribute,
        neighbors: &[VertexId],
    ) -> Result<(), RfcgError> {
        let v = self.attrs.len();
        if v >= self.n {
            return format_err(format!("push_vertex beyond declared {} vertices", self.n));
        }
        let mut prev: Option<VertexId> = None;
        self.encode_buf.clear();
        for &u in neighbors {
            if u as usize >= self.n {
                return format_err(format!("vertex {v}: neighbor {u} out of range"));
            }
            if u as usize == v {
                return format_err(format!("vertex {v}: self-loop"));
            }
            if prev.is_some_and(|p| p >= u) {
                return format_err(format!("vertex {v}: neighbor list not strictly ascending"));
            }
            prev = Some(u);
            self.encode_buf.extend_from_slice(&u.to_le_bytes());
        }
        self.file.write_all(&self.encode_buf)?;
        self.attrs.push(self.attribute_byte(attr));
        let last = *self.offsets.last().expect("offsets start non-empty");
        self.offsets.push(last + neighbors.len() as u64);
        Ok(())
    }

    fn attribute_byte(&self, attr: Attribute) -> u8 {
        attr.index() as u8
    }

    /// Writes the attribute section, back-fills the offset table and header, and
    /// closes the file.
    pub fn finish(mut self) -> Result<CsrSummary, RfcgError> {
        if self.attrs.len() != self.n {
            return format_err(format!(
                "finish after {} of {} vertices",
                self.attrs.len(),
                self.n
            ));
        }
        let entries = *self.offsets.last().expect("offsets non-empty");
        if entries % 2 != 0 {
            return format_err(format!(
                "{entries} neighbor entries: undirected adjacency must be even"
            ));
        }
        let m = entries / 2;
        self.file.write_all(&self.attrs)?;
        self.file.flush()?;
        let mut file = self
            .file
            .into_inner()
            .map_err(|e| RfcgError::Io(e.into_error()))?;
        file.seek(SeekFrom::Start(0))?;
        let mut head = BufWriter::with_capacity(1 << 20, file);
        head.write_all(&RFCG_MAGIC)?;
        head.write_all(&RFCG_VERSION.to_le_bytes())?;
        head.write_all(&(self.n as u64).to_le_bytes())?;
        head.write_all(&m.to_le_bytes())?;
        for off in &self.offsets {
            head.write_all(&off.to_le_bytes())?;
        }
        head.flush()?;
        let file = head
            .into_inner()
            .map_err(|e| RfcgError::Io(e.into_error()))?;
        let file_bytes = file.metadata()?.len();
        file.sync_all().ok();
        Ok(CsrSummary {
            num_vertices: self.n,
            num_edges: m as usize,
            file_bytes,
        })
    }
}

/// Writes an in-memory [`AttributedGraph`] as a `.rfcg` file (the `convert` path
/// for graphs that already fit in memory).
pub fn write_rfcg<P: AsRef<Path>>(
    graph: &AttributedGraph,
    path: P,
) -> Result<CsrSummary, RfcgError> {
    let mut writer = CsrWriter::create(path, graph.num_vertices())?;
    for v in graph.vertices() {
        writer.push_vertex(graph.attribute(v), graph.neighbors(v))?;
    }
    writer.finish()
}

static SPOOL_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Out-of-core CSR builder: accepts undirected edges in **any order**, spilling
/// them to a temporary binary file, then assembles the final `.rfcg` in
/// vertex-ordered chunks.
///
/// Resident memory while spooling is one `u32` degree counter per vertex; while
/// assembling it is one chunk of adjacency (bounded by the `chunk_entries`
/// argument) plus the [`CsrWriter`] offset table. Duplicate edges are rejected at
/// assembly time (they would corrupt the degree-derived layout); self-loops and
/// out-of-range endpoints are rejected immediately.
#[derive(Debug)]
pub struct EdgeSpool {
    path: PathBuf,
    writer: BufWriter<File>,
    degrees: Vec<u32>,
    edges: u64,
}

impl EdgeSpool {
    /// Creates a spool backed by the given temporary file path.
    pub fn create<P: AsRef<Path>>(path: P, num_vertices: usize) -> Result<Self, RfcgError> {
        if num_vertices > u32::MAX as usize {
            return format_err(format!(
                "{num_vertices} vertices exceed the u32 vertex-id space"
            ));
        }
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        Ok(Self {
            path,
            writer: BufWriter::with_capacity(1 << 20, file),
            degrees: vec![0; num_vertices],
            edges: 0,
        })
    }

    /// Creates a spool backed by a unique file in the system temp directory.
    pub fn temp(num_vertices: usize) -> Result<Self, RfcgError> {
        let unique = SPOOL_COUNTER.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("rfcg_spool_{}_{unique}.edges", std::process::id()));
        Self::create(path, num_vertices)
    }

    /// Number of declared vertices.
    pub fn num_vertices(&self) -> usize {
        self.degrees.len()
    }

    /// Number of edges spooled so far.
    pub fn num_edges(&self) -> u64 {
        self.edges
    }

    /// Spools one undirected edge. Rejects self-loops and out-of-range endpoints;
    /// duplicates are *not* detected here (that would need edge-set memory) but
    /// fail [`EdgeSpool::assemble`].
    pub fn push_edge(&mut self, u: VertexId, v: VertexId) -> Result<(), RfcgError> {
        let n = self.degrees.len();
        if u as usize >= n || v as usize >= n {
            return format_err(format!("edge ({u}, {v}) out of range for {n} vertices"));
        }
        if u == v {
            return format_err(format!("self-loop ({u}, {v})"));
        }
        self.writer.write_all(&u.to_le_bytes())?;
        self.writer.write_all(&v.to_le_bytes())?;
        self.degrees[u as usize] += 1;
        self.degrees[v as usize] += 1;
        self.edges += 1;
        Ok(())
    }

    /// Assembles the spooled edges into `out` as a `.rfcg` file, processing
    /// vertices in chunks whose adjacency totals at most `chunk_entries` neighbor
    /// entries (≈ `4 × chunk_entries` bytes resident). Each chunk costs one
    /// sequential scan of the spool file. The spool file is removed on success.
    pub fn assemble<P: AsRef<Path>>(
        mut self,
        attributes: &[Attribute],
        out: P,
        chunk_entries: usize,
    ) -> Result<CsrSummary, RfcgError> {
        let n = self.degrees.len();
        if attributes.len() != n {
            return format_err(format!("{} attributes for {n} vertices", attributes.len()));
        }
        self.writer.flush()?;
        let chunk_entries = chunk_entries.max(1);
        let mut writer = CsrWriter::create(out, n)?;
        let mut lo = 0usize;
        while lo < n || (n == 0 && writer.pushed() == 0) {
            if n == 0 {
                break;
            }
            // Greedy chunk: extend while the adjacency fits the budget (always at
            // least one vertex, so pathological hubs still assemble).
            let mut hi = lo;
            let mut entries = 0usize;
            while hi < n {
                let d = self.degrees[hi] as usize;
                if hi > lo && entries + d > chunk_entries {
                    break;
                }
                entries += d;
                hi += 1;
            }
            self.assemble_chunk(attributes, &mut writer, lo, hi, entries)?;
            lo = hi;
        }
        let summary = writer.finish()?;
        std::fs::remove_file(&self.path).ok();
        Ok(summary)
    }

    /// Collects the adjacency of vertices `lo..hi` from one sequential spool scan,
    /// sorts each list, and pushes the chunk to `writer`.
    fn assemble_chunk(
        &self,
        attributes: &[Attribute],
        writer: &mut CsrWriter,
        lo: usize,
        hi: usize,
        entries: usize,
    ) -> Result<(), RfcgError> {
        // Local CSR layout for the chunk.
        let mut local_offsets = Vec::with_capacity(hi - lo + 1);
        local_offsets.push(0usize);
        for v in lo..hi {
            let last = *local_offsets.last().expect("non-empty");
            local_offsets.push(last + self.degrees[v] as usize);
        }
        debug_assert_eq!(*local_offsets.last().unwrap(), entries);
        let mut data = vec![0 as VertexId; entries];
        let mut cursor = local_offsets[..hi - lo].to_vec();

        let mut reader = BufReader::with_capacity(1 << 20, File::open(&self.path)?);
        let mut record = [0u8; 8];
        for _ in 0..self.edges {
            reader.read_exact(&mut record)?;
            let u = u32::from_le_bytes(record[0..4].try_into().expect("4 bytes"));
            let v = u32::from_le_bytes(record[4..8].try_into().expect("4 bytes"));
            if (lo..hi).contains(&(u as usize)) {
                let slot = &mut cursor[u as usize - lo];
                data[*slot] = v;
                *slot += 1;
            }
            if (lo..hi).contains(&(v as usize)) {
                let slot = &mut cursor[v as usize - lo];
                data[*slot] = u;
                *slot += 1;
            }
        }
        for v in lo..hi {
            let slice = &mut data[local_offsets[v - lo]..local_offsets[v - lo + 1]];
            slice.sort_unstable();
            if slice.windows(2).any(|w| w[0] == w[1]) {
                return format_err(format!("duplicate edge at vertex {v}"));
            }
            writer.push_vertex(attributes[v], slice)?;
        }
        Ok(())
    }
}

/// Reader for `.rfcg` files, implementing [`GraphStore`].
///
/// The header, offset table and attributes are always resident (≈ 17 bytes per
/// vertex); neighbor lists are read from disk on demand unless the store was
/// opened with [`DiskCsr::open_resident`].
#[derive(Debug)]
pub struct DiskCsr {
    file: File,
    num_vertices: usize,
    num_edges: usize,
    offsets: Vec<u64>,
    attrs: Vec<Attribute>,
    /// Fully loaded neighbor section (resident mode only).
    resident: Option<Vec<VertexId>>,
    /// Byte position of the neighbor section.
    neighbors_pos: u64,
    /// Neighbor-section bytes served from disk after open (streaming mode only;
    /// resident mode answers from memory and never bumps this).
    bytes_read: AtomicU64,
}

impl DiskCsr {
    /// Opens a `.rfcg` file in streaming mode: offsets and attributes are loaded
    /// and validated, neighbor lists stay on disk.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, RfcgError> {
        Self::open_with(path, false)
    }

    /// Opens a `.rfcg` file with the neighbor section fully loaded into memory —
    /// random access without seeks, at 8 bytes/edge resident cost.
    pub fn open_resident<P: AsRef<Path>>(path: P) -> Result<Self, RfcgError> {
        Self::open_with(path, true)
    }

    fn open_with<P: AsRef<Path>>(path: P, resident: bool) -> Result<Self, RfcgError> {
        let file = File::open(path)?;
        let file_len = file.metadata()?.len();
        let mut reader = BufReader::with_capacity(1 << 20, &file);

        let mut magic = [0u8; 4];
        let mut word32 = [0u8; 4];
        let mut word64 = [0u8; 8];
        if file_len < HEADER_BYTES {
            return format_err("truncated header");
        }
        reader.read_exact(&mut magic)?;
        if magic != RFCG_MAGIC {
            return format_err(format!("bad magic {magic:?} (expected \"RFCG\")"));
        }
        reader.read_exact(&mut word32)?;
        let version = u32::from_le_bytes(word32);
        if version != RFCG_VERSION {
            return format_err(format!(
                "unsupported version {version} (this build reads version {RFCG_VERSION})"
            ));
        }
        reader.read_exact(&mut word64)?;
        let n = u64::from_le_bytes(word64);
        reader.read_exact(&mut word64)?;
        let m = u64::from_le_bytes(word64);
        if n > u32::MAX as u64 {
            return format_err(format!("{n} vertices exceed the u32 vertex-id space"));
        }
        let n = n as usize;
        let expected = HEADER_BYTES + (n as u64 + 1) * 8 + 2 * m * 4 + n as u64;
        if file_len != expected {
            return format_err(format!(
                "file is {file_len} bytes but n={n}, m={m} implies {expected} (truncated or corrupt)"
            ));
        }

        let mut offsets = Vec::with_capacity(n + 1);
        for _ in 0..=n {
            reader.read_exact(&mut word64)?;
            offsets.push(u64::from_le_bytes(word64));
        }
        if offsets[0] != 0 || *offsets.last().expect("n+1 entries") != 2 * m {
            return format_err("offset table does not span the neighbor section");
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return format_err("offset table is not monotone");
        }

        let neighbors_pos = HEADER_BYTES + (n as u64 + 1) * 8;
        let loaded = if resident {
            let entries = 2 * m as usize;
            let mut bytes = vec![0u8; entries * 4];
            reader.read_exact(&mut bytes)?;
            let mut nbrs = Vec::with_capacity(entries);
            for chunk in bytes.chunks_exact(4) {
                nbrs.push(u32::from_le_bytes(chunk.try_into().expect("4 bytes")));
            }
            Some(nbrs)
        } else {
            reader.seek(SeekFrom::Start(neighbors_pos + 2 * m * 4))?;
            None
        };

        let mut attr_bytes = vec![0u8; n];
        reader.read_exact(&mut attr_bytes)?;
        let mut attrs = Vec::with_capacity(n);
        for (v, &b) in attr_bytes.iter().enumerate() {
            match b {
                0 => attrs.push(Attribute::A),
                1 => attrs.push(Attribute::B),
                other => return format_err(format!("vertex {v}: invalid attribute byte {other}")),
            }
        }
        drop(reader);

        let csr = Self {
            file,
            num_vertices: n,
            num_edges: m as usize,
            offsets,
            attrs,
            resident: loaded,
            neighbors_pos,
            bytes_read: AtomicU64::new(0),
        };
        if let Some(nbrs) = &csr.resident {
            csr.validate_lists(nbrs)?;
        }
        Ok(csr)
    }

    /// Checks that every resident neighbor list is strictly ascending, in range
    /// and self-loop free (resident mode validates eagerly; streaming mode checks
    /// ids as they are read).
    fn validate_lists(&self, nbrs: &[VertexId]) -> Result<(), RfcgError> {
        for v in 0..self.num_vertices {
            let (lo, hi) = (self.offsets[v] as usize, self.offsets[v + 1] as usize);
            let list = &nbrs[lo..hi];
            if list.windows(2).any(|w| w[0] >= w[1]) {
                return format_err(format!("vertex {v}: neighbor list not strictly ascending"));
            }
            if list
                .iter()
                .any(|&u| u as usize >= self.num_vertices || u as usize == v)
            {
                return format_err(format!("vertex {v}: neighbor out of range or self-loop"));
            }
        }
        Ok(())
    }

    /// Whether the neighbor section is fully loaded in memory.
    pub fn is_resident(&self) -> bool {
        self.resident.is_some()
    }

    /// Neighbor-section bytes read from disk since open — targeted
    /// [`neighbors_into`](GraphStore::neighbors_into) fetches plus sequential
    /// [`scan_adjacency`](GraphStore::scan_adjacency) passes. Always 0 in
    /// resident mode, where every query is answered from memory.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Materializes the store as an in-memory [`AttributedGraph`] (intended for
    /// residual-scale graphs and tests, not multi-million-vertex inputs).
    pub fn to_graph(&self) -> Result<AttributedGraph, RfcgError> {
        let mut builder = crate::builder::GraphBuilder::with_attributes(self.attrs.clone());
        let mut scan_err: Option<RfcgError> = None;
        self.scan_adjacency(&mut |v, nbrs| {
            if scan_err.is_some() {
                return;
            }
            for &u in nbrs {
                if u as usize >= self.num_vertices || u == v {
                    scan_err = Some(RfcgError::Format(format!(
                        "vertex {v}: neighbor {u} out of range or self-loop"
                    )));
                    return;
                }
                if v < u {
                    builder.add_edge(v, u);
                }
            }
        })?;
        if let Some(e) = scan_err {
            return Err(e);
        }
        let graph = builder
            .build()
            .map_err(|e| RfcgError::Format(e.to_string()))?;
        if graph.num_edges() != self.num_edges {
            return format_err(format!(
                "adjacency is not symmetric: header claims {} edges, lists encode {}",
                self.num_edges,
                graph.num_edges()
            ));
        }
        Ok(graph)
    }
}

impl GraphStore for DiskCsr {
    fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    fn num_edges(&self) -> usize {
        self.num_edges
    }

    fn attribute(&self, v: VertexId) -> Attribute {
        self.attrs[v as usize]
    }

    fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    fn neighbors_into(&self, v: VertexId, buf: &mut Vec<VertexId>) -> io::Result<()> {
        let (lo, hi) = (
            self.offsets[v as usize] as usize,
            self.offsets[v as usize + 1] as usize,
        );
        if let Some(nbrs) = &self.resident {
            buf.extend_from_slice(&nbrs[lo..hi]);
            return Ok(());
        }
        let mut bytes = vec![0u8; (hi - lo) * 4];
        let mut file = &self.file;
        file.seek(SeekFrom::Start(self.neighbors_pos + lo as u64 * 4))?;
        file.read_exact(&mut bytes)?;
        self.bytes_read
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        for chunk in bytes.chunks_exact(4) {
            let u = u32::from_le_bytes(chunk.try_into().expect("4 bytes"));
            if u as usize >= self.num_vertices {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("vertex {v}: neighbor {u} out of range"),
                ));
            }
            buf.push(u);
        }
        Ok(())
    }

    fn scan_adjacency(&self, f: &mut dyn FnMut(VertexId, &[VertexId])) -> io::Result<()> {
        if let Some(nbrs) = &self.resident {
            for v in 0..self.num_vertices {
                let (lo, hi) = (self.offsets[v] as usize, self.offsets[v + 1] as usize);
                f(v as VertexId, &nbrs[lo..hi]);
            }
            return Ok(());
        }
        let mut file = &self.file;
        file.seek(SeekFrom::Start(self.neighbors_pos))?;
        let mut reader = BufReader::with_capacity(1 << 20, file);
        let mut bytes: Vec<u8> = Vec::new();
        let mut list: Vec<VertexId> = Vec::new();
        for v in 0..self.num_vertices {
            let d = (self.offsets[v + 1] - self.offsets[v]) as usize;
            bytes.resize(d * 4, 0);
            reader.read_exact(&mut bytes)?;
            self.bytes_read
                .fetch_add(bytes.len() as u64, Ordering::Relaxed);
            list.clear();
            for chunk in bytes.chunks_exact(4) {
                let u = u32::from_le_bytes(chunk.try_into().expect("4 bytes"));
                if u as usize >= self.num_vertices {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("vertex {v}: neighbor {u} out of range"),
                    ));
                }
                list.push(u);
            }
            f(v as VertexId, &list);
        }
        Ok(())
    }

    fn resident_bytes(&self) -> usize {
        self.offsets.len() * 8
            + self.attrs.len()
            + self
                .resident
                .as_ref()
                .map_or(0, |n| n.len() * std::mem::size_of::<VertexId>())
    }

    fn disk_bytes_read(&self) -> u64 {
        self.bytes_read()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::fixtures;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("rfc_disk_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{}_{name}", std::process::id()))
    }

    #[test]
    fn writer_roundtrip_matches_graph() {
        let g = fixtures::fig1_graph();
        let path = temp_path("fig1.rfcg");
        let summary = write_rfcg(&g, &path).unwrap();
        assert_eq!(summary.num_vertices, g.num_vertices());
        assert_eq!(summary.num_edges, g.num_edges());

        for resident in [false, true] {
            let store = if resident {
                DiskCsr::open_resident(&path).unwrap()
            } else {
                DiskCsr::open(&path).unwrap()
            };
            assert_eq!(store.is_resident(), resident);
            assert_eq!(GraphStore::num_vertices(&store), g.num_vertices());
            assert_eq!(GraphStore::num_edges(&store), g.num_edges());
            let mut buf = Vec::new();
            for v in g.vertices() {
                assert_eq!(GraphStore::degree(&store, v), g.degree(v));
                assert_eq!(GraphStore::attribute(&store, v), g.attribute(v));
                buf.clear();
                store.neighbors_into(v, &mut buf).unwrap();
                assert_eq!(buf.as_slice(), g.neighbors(v));
            }
            assert_eq!(store.to_graph().unwrap(), g);
            // Streaming mode keeps the neighbor section on disk, so the per-vertex
            // fetches plus the to_graph scan each cost the full section (2m × 4
            // bytes); resident mode never touches the disk after open.
            if resident {
                assert_eq!(store.bytes_read(), 0);
            } else {
                assert!(store.resident_bytes() < summary.file_bytes as usize);
                assert_eq!(store.bytes_read(), 2 * 2 * g.num_edges() as u64 * 4);
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn spool_assembles_edges_in_any_order() {
        let g = fixtures::fig1_graph();
        let path = temp_path("spooled.rfcg");
        let mut spool = EdgeSpool::temp(g.num_vertices()).unwrap();
        // Reverse order, swapped endpoints: assembly must canonicalize.
        for &(u, v) in g.edge_list().iter().rev() {
            spool.push_edge(v, u).unwrap();
        }
        // Tiny chunk budget forces the multi-chunk, multi-scan path.
        let summary = spool.assemble(g.attributes(), &path, 7).unwrap();
        assert_eq!(summary.num_edges, g.num_edges());
        let store = DiskCsr::open(&path).unwrap();
        assert_eq!(store.to_graph().unwrap(), g);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn spool_rejects_bad_edges_and_duplicates() {
        let mut spool = EdgeSpool::temp(4).unwrap();
        assert!(matches!(spool.push_edge(1, 1), Err(RfcgError::Format(_))));
        assert!(matches!(spool.push_edge(0, 9), Err(RfcgError::Format(_))));
        spool.push_edge(0, 1).unwrap();
        spool.push_edge(1, 0).unwrap(); // duplicate, caught at assembly
        let path = temp_path("dups.rfcg");
        let err = spool
            .assemble(&[Attribute::A; 4], &path, 1 << 16)
            .unwrap_err();
        assert!(err.to_string().contains("duplicate edge"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn writer_validates_contract() {
        let path = temp_path("contract.rfcg");
        let mut w = CsrWriter::create(&path, 3).unwrap();
        assert!(w.push_vertex(Attribute::A, &[0]).is_err()); // self-loop
        assert!(w.push_vertex(Attribute::A, &[5]).is_err()); // out of range
        assert!(w.push_vertex(Attribute::A, &[2, 1]).is_err()); // not ascending
        assert!(w.push_vertex(Attribute::A, &[1, 1]).is_err()); // duplicate
        w.push_vertex(Attribute::A, &[1]).unwrap();
        w.push_vertex(Attribute::B, &[0, 2]).unwrap();
        // Finishing early (2 of 3 vertices) is an error.
        let w2 = CsrWriter::create(temp_path("early.rfcg"), 3).unwrap();
        assert!(w2.finish().is_err());
        // Odd entry total (asymmetric adjacency) is an error.
        w.push_vertex(Attribute::A, &[]).unwrap();
        assert!(w.finish().is_err());
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(temp_path("early.rfcg")).ok();
    }

    #[test]
    fn open_rejects_corruption() {
        let g = fixtures::balanced_clique(6);
        let path = temp_path("corrupt.rfcg");
        write_rfcg(&g, &path).unwrap();
        let good = std::fs::read(&path).unwrap();

        // Truncated file.
        std::fs::write(&path, &good[..good.len() - 3]).unwrap();
        assert!(matches!(DiskCsr::open(&path), Err(RfcgError::Format(_))));
        // Bad magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        std::fs::write(&path, &bad).unwrap();
        let err = DiskCsr::open(&path).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
        // Wrong version.
        let mut bad = good.clone();
        bad[4] = 99;
        std::fs::write(&path, &bad).unwrap();
        let err = DiskCsr::open(&path).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
        // Header shorter than the fixed header.
        std::fs::write(&path, b"RF").unwrap();
        assert!(DiskCsr::open(&path).is_err());
        // Corrupt attribute byte.
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] = 7;
        std::fs::write(&path, &bad).unwrap();
        let err = DiskCsr::open(&path).unwrap_err();
        assert!(err.to_string().contains("attribute"), "{err}");
        // Resident mode validates neighbor lists eagerly: corrupt one entry.
        let mut bad = good.clone();
        let neighbors_pos = (HEADER_BYTES + (6 + 1) * 8) as usize;
        bad[neighbors_pos..neighbors_pos + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&path, &bad).unwrap();
        assert!(DiskCsr::open_resident(&path).is_err());
        // Missing file is an Io error, not a panic.
        assert!(matches!(
            DiskCsr::open(temp_path("missing.rfcg")),
            Err(RfcgError::Io(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_graph_and_isolated_vertices_roundtrip() {
        for g in [
            GraphBuilder::new(0).build().unwrap(),
            GraphBuilder::new(5).build().unwrap(),
        ] {
            let path = temp_path(&format!("empty_{}.rfcg", g.num_vertices()));
            write_rfcg(&g, &path).unwrap();
            let store = DiskCsr::open(&path).unwrap();
            assert_eq!(GraphStore::num_vertices(&store), g.num_vertices());
            assert_eq!(GraphStore::num_edges(&store), 0);
            assert_eq!(store.to_graph().unwrap(), g);
            let mut visited = 0;
            store
                .scan_adjacency(&mut |_, nbrs| {
                    assert!(nbrs.is_empty());
                    visited += 1;
                })
                .unwrap();
            assert_eq!(visited, g.num_vertices());
            std::fs::remove_file(&path).ok();
        }
    }
}
