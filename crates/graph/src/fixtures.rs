//! Small hand-built graphs used by tests, examples and documentation across the
//! workspace.
//!
//! These fixtures are intentionally tiny and fully deterministic, so that expected
//! results (maximum fair clique sizes, core numbers, reduction survivors, …) can be
//! verified by hand.

use crate::attr::Attribute;
use crate::builder::GraphBuilder;
use crate::graph::AttributedGraph;

/// A 15-vertex graph adapted from Fig. 1 of the paper.
///
/// Vertex `i` corresponds to the paper's `v_{i+1}`. The right-hand side
/// (`v7, v8, v10..v15`, ids `6, 7, 9..14`) forms an 8-clique with three `b`-vertices
/// (`v7, v8, v10`) and five `a`-vertices (`v11..v15`); the left-hand side is a sparser
/// structure around `v1..v6, v9`. With `k = 3`, `δ = 1` the maximum relative fair clique
/// has **7 vertices**: the 8-clique minus any one of its `a`-vertices — exactly the
/// answer described in Example 1 of the paper.
pub fn fig1_graph() -> AttributedGraph {
    use Attribute::{A, B};
    let attrs = vec![
        A, // v1
        B, // v2
        A, // v3
        A, // v4
        A, // v5
        A, // v6
        B, // v7
        B, // v8
        B, // v9
        B, // v10
        A, // v11
        A, // v12
        A, // v13
        A, // v14
        A, // v15
    ];
    let mut b = GraphBuilder::with_attributes(attrs);
    // Left-hand structure (v1..v6, v9). Chosen so that, as in Example 2, the edge
    // (v2, v5) has common neighbors {v1, v6, v9} with attributes {a, a, b}.
    let left: [(u32, u32); 14] = [
        (0, 1), // v1-v2
        (0, 4), // v1-v5
        (0, 5), // v1-v6
        (1, 4), // v2-v5
        (1, 5), // v2-v6
        (1, 8), // v2-v9
        (4, 5), // v5-v6
        (4, 8), // v5-v9
        (5, 8), // v6-v9
        (1, 2), // v2-v3
        (2, 3), // v3-v4
        (3, 4), // v4-v5
        (2, 8), // v3-v9
        (3, 8), // v4-v9
    ];
    b.add_edges(left);
    // Bridges between the two halves.
    b.add_edge(3, 6); // v4-v7
    b.add_edge(8, 9); // v9-v10
                      // Right-hand 8-clique on {v7, v8, v10, v11, v12, v13, v14, v15} = ids {6,7,9..14}.
    let clique: [u32; 8] = [6, 7, 9, 10, 11, 12, 13, 14];
    for (i, &u) in clique.iter().enumerate() {
        for &v in &clique[i + 1..] {
            b.add_edge(u, v);
        }
    }
    b.build().expect("fig1 fixture must build")
}

/// A complete graph `K_n` with attributes alternating `a, b, a, b, …`.
pub fn balanced_clique(n: usize) -> AttributedGraph {
    let attrs = (0..n)
        .map(|i| {
            if i % 2 == 0 {
                Attribute::A
            } else {
                Attribute::B
            }
        })
        .collect();
    let mut b = GraphBuilder::with_attributes(attrs);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            b.add_edge(u, v);
        }
    }
    b.build().expect("complete graph must build")
}

/// Two disjoint cliques joined by a single bridge edge.
///
/// Clique one has `n1` vertices alternating attributes; clique two has `n2` vertices all
/// of attribute `a`. Useful for testing connected-component handling and fairness
/// infeasibility (the second clique can never be fair for `k ≥ 1`).
pub fn two_cliques_with_bridge(n1: usize, n2: usize) -> AttributedGraph {
    let mut attrs = Vec::with_capacity(n1 + n2);
    for i in 0..n1 {
        attrs.push(if i % 2 == 0 {
            Attribute::A
        } else {
            Attribute::B
        });
    }
    attrs.extend(std::iter::repeat(Attribute::A).take(n2));
    let mut b = GraphBuilder::with_attributes(attrs);
    for u in 0..n1 as u32 {
        for v in (u + 1)..n1 as u32 {
            b.add_edge(u, v);
        }
    }
    for u in 0..n2 as u32 {
        for v in (u + 1)..n2 as u32 {
            b.add_edge(n1 as u32 + u, n1 as u32 + v);
        }
    }
    if n1 > 0 && n2 > 0 {
        b.add_edge(n1 as u32 - 1, n1 as u32);
    }
    b.build().expect("two-clique fixture must build")
}

/// A path graph `P_n` (useful as a clique-free control), alternating attributes.
pub fn path_graph(n: usize) -> AttributedGraph {
    let attrs = (0..n)
        .map(|i| {
            if i % 2 == 0 {
                Attribute::A
            } else {
                Attribute::B
            }
        })
        .collect();
    let mut b = GraphBuilder::with_attributes(attrs);
    for v in 1..n as u32 {
        b.add_edge(v - 1, v);
    }
    b.build().expect("path fixture must build")
}

/// The shortcoming example of Fig. 2: an edge `(u, v)` (ids 0, 1, both attribute `a`)
/// whose seven common neighbors `w1..w7` (ids 2..=8) have attributes
/// `a, a, a, a, b, b, b` and share colors across the two attribute classes.
///
/// The returned graph contains the edge `(0, 1)`, the edges from both endpoints to every
/// `w_i`, and edges among the `w_i` chosen so that a degree-based greedy coloring gives
/// the color collisions of the figure. It is used by the enhanced-colorful-support unit
/// tests.
pub fn fig2_graph() -> AttributedGraph {
    use Attribute::{A, B};
    let attrs = vec![A, A, A, A, A, A, B, B, B];
    let mut b = GraphBuilder::with_attributes(attrs);
    // u = 0, v = 1, w1..w7 = 2..=8.
    b.add_edge(0, 1);
    for w in 2..=8u32 {
        b.add_edge(0, w);
        b.add_edge(1, w);
    }
    b.build().expect("fig2 fixture must build")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_shape() {
        let g = fig1_graph();
        assert_eq!(g.num_vertices(), 15);
        // 14 left edges + 2 bridges + C(8,2)=28 clique edges.
        assert_eq!(g.num_edges(), 14 + 2 + 28);
        // Example 2 prerequisite: common neighbors of (v2, v5) are {v1, v6, v9}.
        assert_eq!(g.common_neighbors(1, 4), vec![0, 5, 8]);
        // The planted clique is a clique.
        assert!(g.is_clique(&[6, 7, 9, 10, 11, 12, 13, 14]));
    }

    #[test]
    fn balanced_clique_shape() {
        let g = balanced_clique(6);
        assert_eq!(g.num_edges(), 15);
        assert!(g.is_clique(&[0, 1, 2, 3, 4, 5]));
        assert_eq!(g.attribute_counts().a(), 3);
        assert_eq!(g.attribute_counts().b(), 3);
    }

    #[test]
    fn two_cliques_shape() {
        let g = two_cliques_with_bridge(4, 3);
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(g.num_edges(), 6 + 3 + 1);
        assert!(g.is_clique(&[0, 1, 2, 3]));
        assert!(g.is_clique(&[4, 5, 6]));
        assert!(g.has_edge(3, 4));
    }

    #[test]
    fn path_graph_shape() {
        let g = path_graph(5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn fig2_shape() {
        let g = fig2_graph();
        assert_eq!(g.num_vertices(), 9);
        assert_eq!(g.common_neighbors(0, 1).len(), 7);
    }
}
