//! The immutable CSR attributed graph.
//!
//! [`AttributedGraph`] stores an undirected, unweighted, simple graph in compressed
//! sparse row form together with one binary [`Attribute`] per vertex. Neighbor lists are
//! sorted, which makes adjacency tests (`has_edge`) `O(log d)` and common-neighbor
//! enumeration a linear merge — the pattern the colorful-support reductions rely on.
//!
//! Every undirected edge additionally carries a stable [`EdgeId`] in `0..m`, exposed in
//! the adjacency lists, so that peeling algorithms (truss-style edge removal in
//! `rfc-core::reduction`) can maintain per-edge state in flat arrays.

use crate::attr::{Attribute, AttributeCounts};

/// Vertex identifier: a dense index in `0..n`.
pub type VertexId = u32;

/// Edge identifier: a dense index in `0..m` over undirected edges.
pub type EdgeId = u32;

/// An immutable undirected attributed graph in CSR form.
///
/// Construct through [`crate::GraphBuilder`]; the builder removes self-loops and
/// duplicate edges and validates endpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributedGraph {
    /// CSR offsets, length `n + 1`.
    offsets: Vec<usize>,
    /// Concatenated sorted neighbor lists, length `2m`.
    neighbors: Vec<VertexId>,
    /// Edge id parallel to `neighbors`, length `2m`.
    edge_ids: Vec<EdgeId>,
    /// Vertex attributes, length `n`.
    attributes: Vec<Attribute>,
    /// Canonical edge list `(u, v)` with `u < v`, length `m`, sorted lexicographically.
    edges: Vec<(VertexId, VertexId)>,
}

impl AttributedGraph {
    /// Internal constructor used by [`crate::GraphBuilder`] and [`crate::subgraph`].
    ///
    /// `edges` must be canonical (`u < v`), sorted, and free of duplicates/self-loops;
    /// `attributes.len()` is the vertex count.
    pub(crate) fn from_parts(attributes: Vec<Attribute>, edges: Vec<(VertexId, VertexId)>) -> Self {
        let n = attributes.len();
        let mut degrees = vec![0usize; n];
        for &(u, v) in &edges {
            degrees[u as usize] += 1;
            degrees[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degrees {
            acc += d;
            offsets.push(acc);
        }
        let mut neighbors = vec![0 as VertexId; acc];
        let mut edge_ids = vec![0 as EdgeId; acc];
        let mut cursor = offsets[..n].to_vec();
        for (eid, &(u, v)) in edges.iter().enumerate() {
            let eid = eid as EdgeId;
            neighbors[cursor[u as usize]] = v;
            edge_ids[cursor[u as usize]] = eid;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize]] = u;
            edge_ids[cursor[v as usize]] = eid;
            cursor[v as usize] += 1;
        }
        // Sort each adjacency slice by neighbor id, keeping edge ids aligned.
        for v in 0..n {
            let (lo, hi) = (offsets[v], offsets[v + 1]);
            let mut pairs: Vec<(VertexId, EdgeId)> = neighbors[lo..hi]
                .iter()
                .copied()
                .zip(edge_ids[lo..hi].iter().copied())
                .collect();
            pairs.sort_unstable();
            for (i, (nbr, eid)) in pairs.into_iter().enumerate() {
                neighbors[lo + i] = nbr;
                edge_ids[lo + i] = eid;
            }
        }
        Self {
            offsets,
            neighbors,
            edge_ids,
            attributes,
            edges,
        }
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.attributes.len()
    }

    /// Number of undirected edges `m`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all vertex ids `0..n`.
    #[inline]
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.num_vertices() as VertexId
    }

    /// The attribute of vertex `v`.
    #[inline]
    pub fn attribute(&self, v: VertexId) -> Attribute {
        self.attributes[v as usize]
    }

    /// The full attribute slice, indexed by vertex id.
    #[inline]
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Counts of vertices per attribute over the whole graph.
    pub fn attribute_counts(&self) -> AttributeCounts {
        AttributeCounts::from_iter(self.attributes.iter().copied())
    }

    /// Counts of attributes over an arbitrary vertex set.
    pub fn attribute_counts_of(&self, vertices: &[VertexId]) -> AttributeCounts {
        AttributeCounts::from_iter(vertices.iter().map(|&v| self.attribute(v)))
    }

    /// The degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// The maximum degree `d_max` over all vertices (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices() as VertexId)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// The sorted neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.neighbors[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Edge ids parallel to [`Self::neighbors`]: `neighbor_edge_ids(v)[i]` is the id of
    /// the undirected edge `(v, neighbors(v)[i])`.
    #[inline]
    pub fn neighbor_edge_ids(&self, v: VertexId) -> &[EdgeId] {
        &self.edge_ids[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Iterator over `(neighbor, edge_id)` pairs of `v`, in neighbor order.
    #[inline]
    pub fn neighbors_with_edges(
        &self,
        v: VertexId,
    ) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        self.neighbors(v)
            .iter()
            .copied()
            .zip(self.neighbor_edge_ids(v).iter().copied())
    }

    /// Whether the edge `(u, v)` exists. `O(log deg(u))`.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return false;
        }
        // Search in the smaller adjacency list.
        let (x, y) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(x).binary_search(&y).is_ok()
    }

    /// The edge id of `(u, v)`, if the edge exists. `O(log deg)`.
    pub fn edge_id(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        if u == v {
            return None;
        }
        let (x, y) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(x)
            .binary_search(&y)
            .ok()
            .map(|i| self.neighbor_edge_ids(x)[i])
    }

    /// The endpoints `(u, v)` with `u < v` of edge `e`.
    #[inline]
    pub fn edge_endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        self.edges[e as usize]
    }

    /// The canonical edge list (each edge once, `u < v`, lexicographically sorted).
    #[inline]
    pub fn edge_list(&self) -> &[(VertexId, VertexId)] {
        &self.edges
    }

    /// Common neighbors of `u` and `v`, by sorted-list merge. `O(deg(u) + deg(v))`.
    pub fn common_neighbors(&self, u: VertexId, v: VertexId) -> Vec<VertexId> {
        let mut out = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        let (nu, nv) = (self.neighbors(u), self.neighbors(v));
        while i < nu.len() && j < nv.len() {
            match nu[i].cmp(&nv[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(nu[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }

    /// Calls `f(w, edge_id(u,w), edge_id(v,w))` for every common neighbor `w` of `u`
    /// and `v`. Used by the truss-style peeling reductions, which need the incident edge
    /// ids of both wings of each triangle.
    pub fn for_each_common_neighbor<F>(&self, u: VertexId, v: VertexId, mut f: F)
    where
        F: FnMut(VertexId, EdgeId, EdgeId),
    {
        let (mut i, mut j) = (0usize, 0usize);
        let (nu, nv) = (self.neighbors(u), self.neighbors(v));
        let (eu, ev) = (self.neighbor_edge_ids(u), self.neighbor_edge_ids(v));
        while i < nu.len() && j < nv.len() {
            match nu[i].cmp(&nv[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    f(nu[i], eu[i], ev[j]);
                    i += 1;
                    j += 1;
                }
            }
        }
    }

    /// Whether the given vertex set induces a clique (every pair adjacent).
    pub fn is_clique(&self, vertices: &[VertexId]) -> bool {
        for (i, &u) in vertices.iter().enumerate() {
            for &v in &vertices[i + 1..] {
                if !self.has_edge(u, v) {
                    return false;
                }
            }
        }
        true
    }

    /// Number of vertices with degree at least one.
    pub fn num_non_isolated_vertices(&self) -> usize {
        (0..self.num_vertices() as VertexId)
            .filter(|&v| self.degree(v) > 0)
            .count()
    }

    /// Summary statistics of the graph (Table I style), including the
    /// memory-footprint estimates the scale tier reports: what this CSR costs
    /// resident, and what a dense [`crate::bitset::BitMatrix`] adjacency over the
    /// same vertex count would cost if the search layer built one.
    pub fn stats(&self) -> GraphStats {
        let n = self.num_vertices();
        let csr_bytes = (n + 1) * std::mem::size_of::<usize>()          // offsets
            + self.neighbors.len() * std::mem::size_of::<VertexId>()    // neighbors
            + self.edge_ids.len() * std::mem::size_of::<EdgeId>()       // edge ids
            + n * std::mem::size_of::<Attribute>()                      // attributes
            + self.edges.len() * std::mem::size_of::<(VertexId, VertexId)>(); // edge list
        let words_per_row = n.div_ceil(64);
        let bitmatrix_bytes = n.saturating_mul(words_per_row).saturating_mul(8);
        GraphStats {
            num_vertices: n,
            num_edges: self.num_edges(),
            max_degree: self.max_degree(),
            attribute_counts: self.attribute_counts(),
            csr_bytes,
            bitmatrix_bytes,
        }
    }
}

/// Summary statistics of an attributed graph, matching the columns of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphStats {
    /// Number of vertices `n = |V|`.
    pub num_vertices: usize,
    /// Number of undirected edges `m = |E|`.
    pub num_edges: usize,
    /// Maximum degree `d_max`.
    pub max_degree: usize,
    /// Per-attribute vertex counts.
    pub attribute_counts: AttributeCounts,
    /// Estimated resident bytes of the CSR representation itself (offsets,
    /// neighbor and edge-id arrays, attributes, canonical edge list).
    pub csr_bytes: usize,
    /// Estimated bytes of a dense bit-matrix adjacency over `n` vertices
    /// (`n * ⌈n/64⌉` words) — what the branch-and-bound layer would allocate if
    /// handed this graph whole instead of the reduced residual. The scale tier
    /// prints both so users can see why a graph does or doesn't fit.
    pub bitmatrix_bytes: usize,
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} m={} dmax={} attrs={}",
            self.num_vertices, self.num_edges, self.max_degree, self.attribute_counts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    /// The 15-vertex example graph of Fig. 1 in the paper (1-based ids in the figure,
    /// 0-based here: paper vertex `v_i` is id `i - 1`).
    fn fig1_graph() -> AttributedGraph {
        crate::fixtures::fig1_graph()
    }

    fn small_graph() -> AttributedGraph {
        // Triangle 0-1-2 plus pendant 3 attached to 2.
        let mut b = GraphBuilder::new(4);
        b.set_attribute(0, Attribute::A);
        b.set_attribute(1, Attribute::B);
        b.set_attribute(2, Attribute::A);
        b.set_attribute(3, Attribute::B);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 2);
        b.add_edge(2, 3);
        b.build().unwrap()
    }

    #[test]
    fn basic_counts_and_degrees() {
        let g = small_graph();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.attribute_counts(), AttributeCounts::from_counts(2, 2));
    }

    #[test]
    fn neighbor_lists_are_sorted_and_consistent() {
        let g = small_graph();
        for v in g.vertices() {
            let nbrs = g.neighbors(v);
            assert!(nbrs.windows(2).all(|w| w[0] < w[1]), "sorted, no dups");
            for (i, &u) in nbrs.iter().enumerate() {
                // Symmetry.
                assert!(g.neighbors(u).contains(&v));
                // Edge id agrees with endpoints.
                let eid = g.neighbor_edge_ids(v)[i];
                let (a, b) = g.edge_endpoints(eid);
                assert_eq!((a.min(b), a.max(b)), (v.min(u), v.max(u)));
            }
        }
    }

    #[test]
    fn has_edge_and_edge_id() {
        let g = small_graph();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
        assert!(!g.has_edge(1, 1));
        assert_eq!(g.edge_id(0, 3), None);
        let eid = g.edge_id(2, 3).unwrap();
        assert_eq!(g.edge_endpoints(eid), (2, 3));
        assert_eq!(g.edge_id(3, 2), Some(eid));
    }

    #[test]
    fn common_neighbors_merge() {
        let g = small_graph();
        assert_eq!(g.common_neighbors(0, 1), vec![2]);
        assert_eq!(g.common_neighbors(0, 3), vec![2]);
        assert_eq!(g.common_neighbors(1, 3), vec![2]);
        assert_eq!(g.common_neighbors(2, 3), Vec::<VertexId>::new());
        let mut seen = Vec::new();
        g.for_each_common_neighbor(0, 1, |w, e_uw, e_vw| {
            seen.push((w, g.edge_endpoints(e_uw), g.edge_endpoints(e_vw)));
        });
        assert_eq!(seen, vec![(2, (0, 2), (1, 2))]);
    }

    #[test]
    fn clique_check() {
        let g = small_graph();
        assert!(g.is_clique(&[0, 1, 2]));
        assert!(g.is_clique(&[2, 3]));
        assert!(g.is_clique(&[1]));
        assert!(g.is_clique(&[]));
        assert!(!g.is_clique(&[0, 1, 2, 3]));
    }

    #[test]
    fn fig1_graph_has_expected_shape() {
        let g = fig1_graph();
        assert_eq!(g.num_vertices(), 15);
        // v7..v15 (ids 6..14) contain an 8-vertex clique minus one vertex; check a few
        // adjacencies from the figure.
        assert!(g.has_edge(6, 7)); // v7 - v8
        assert!(g.has_edge(9, 14)); // v10 - v15
        assert!(!g.has_edge(0, 14)); // v1 - v15 not adjacent
    }

    #[test]
    fn stats_display_is_stable() {
        let g = small_graph();
        let s = g.stats();
        assert_eq!(s.num_vertices, 4);
        assert_eq!(s.num_edges, 4);
        assert_eq!(format!("{s}"), "n=4 m=4 dmax=3 attrs=(a: 2, b: 2)");
    }

    #[test]
    fn non_isolated_vertex_count() {
        let mut b = GraphBuilder::new(5);
        for v in 0..5 {
            b.set_attribute(v, Attribute::A);
        }
        b.add_edge(0, 1);
        let g = b.build().unwrap();
        assert_eq!(g.num_non_isolated_vertices(), 2);
        assert_eq!(g.num_vertices(), 5);
    }
}
