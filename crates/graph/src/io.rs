//! Plain-text graph input/output.
//!
//! Two simple formats are supported, matching how the paper's datasets are distributed:
//!
//! * **Edge list**: one `u v` pair per line (whitespace separated). Lines starting with
//!   `#` or `%` are comments. Vertex ids may be arbitrary non-negative integers; they
//!   are compacted to `0..n`.
//! * **Attribute list**: one `v attr` pair per line, where `attr` is `a`/`b`/`0`/`1`.
//!   Vertices without an explicit attribute default to `a`.
//!
//! There is also a single-file combined format (`write_graph` / `read_graph`) used by
//! the examples to snapshot generated datasets.
//!
//! All readers share one counted line reader, so every [`IoError::Parse`] carries both
//! the 1-based line number and the byte offset where the problem starts — oversized
//! numeric tokens are pinpointed to their first byte. Duplicate edges and self-loops in
//! the *text* formats are explicit errors rather than being silently compacted away
//! (the programmatic [`GraphBuilder`] keeps its forgiving dedup semantics, which the
//! synthetic generators rely on).

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::attr::Attribute;
use crate::builder::GraphBuilder;
use crate::graph::{AttributedGraph, VertexId};

/// Errors arising while parsing graph text formats.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line, reported with its 1-based line number and byte offset.
    Parse {
        /// 1-based line number of the offending line (0 for whole-input errors).
        line: usize,
        /// Byte offset, from the start of the input, where the problem begins.
        byte: u64,
        /// Human-readable description.
        message: String,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse {
                line: 0, message, ..
            } => write!(f, "parse error: {message}"),
            IoError::Parse {
                line,
                byte,
                message,
            } => write!(f, "parse error on line {line} (byte {byte}): {message}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// One line of input, with its position in the stream.
struct Line<'a> {
    /// 1-based line number.
    number: usize,
    /// Byte offset of the first byte of this line.
    byte: u64,
    /// Line content without the trailing newline.
    text: &'a str,
}

impl Line<'_> {
    /// Byte offset (within the whole input) of `token`, which must be a slice of
    /// this line's text.
    fn token_byte(&self, token: &str) -> u64 {
        let delta = (token.as_ptr() as usize).wrapping_sub(self.text.as_ptr() as usize);
        self.byte + delta.min(self.text.len()) as u64
    }

    /// A parse error anchored at the start of this line.
    fn err(&self, message: String) -> IoError {
        IoError::Parse {
            line: self.number,
            byte: self.byte,
            message,
        }
    }

    /// A parse error anchored at `token` within this line.
    fn err_at(&self, token: &str, message: String) -> IoError {
        IoError::Parse {
            line: self.number,
            byte: self.token_byte(token),
            message,
        }
    }
}

/// The single counted line reader shared by every text parser in this module: it
/// tracks line numbers and byte offsets so parse errors can point at the exact
/// position of the problem.
struct CountedLines<R> {
    reader: R,
    buf: String,
    number: usize,
    byte: u64,
}

impl<R: BufRead> CountedLines<R> {
    fn new(reader: R) -> Self {
        Self {
            reader,
            buf: String::new(),
            number: 0,
            byte: 0,
        }
    }

    /// Reads the next line, returning `None` at end of input.
    fn next_line(&mut self) -> Result<Option<Line<'_>>, IoError> {
        self.buf.clear();
        let read = self.reader.read_line(&mut self.buf)?;
        if read == 0 {
            return Ok(None);
        }
        self.number += 1;
        let byte = self.byte;
        self.byte += read as u64;
        Ok(Some(Line {
            number: self.number,
            byte,
            text: self.buf.trim_end_matches(['\n', '\r']),
        }))
    }
}

/// True for blank lines and `#`/`%` comments, which every format skips.
fn is_skippable(trimmed: &str) -> bool {
    trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%')
}

/// Parses a non-negative integer token, distinguishing oversized values (all
/// digits, too large for the target type) from junk, and pointing the error at
/// the token's byte offset.
fn parse_int(line: &Line<'_>, token: &str, what: &str, max: u64) -> Result<u64, IoError> {
    let parsed = token.parse::<u64>();
    let oversized = match parsed {
        Ok(v) => v > max,
        Err(_) => !token.is_empty() && token.bytes().all(|b| b.is_ascii_digit()),
    };
    if oversized {
        return Err(line.err_at(
            token,
            format!(
                "{what} `{token}` exceeds the maximum {max} (token starts at byte {})",
                line.token_byte(token)
            ),
        ));
    }
    parsed.map_err(|_| line.err_at(token, format!("invalid {what} `{token}`")))
}

/// Splits a line into exactly two whitespace-separated fields.
fn two_fields<'a>(line: &Line<'a>, expected: &str) -> Result<(&'a str, &'a str), IoError> {
    let trimmed = line.text.trim();
    let mut parts = trimmed.split_whitespace();
    match (parts.next(), parts.next()) {
        (Some(a), Some(b)) => Ok((a, b)),
        _ => Err(line.err(format!("expected `{expected}`, got `{trimmed}`"))),
    }
}

/// Tracks undirected edges seen so far and reports self-loops and duplicates as
/// explicit parse errors (with the line where the edge first appeared).
struct EdgeDedup {
    seen: HashMap<(VertexId, VertexId), usize>,
}

impl EdgeDedup {
    fn new() -> Self {
        Self {
            seen: HashMap::new(),
        }
    }

    fn check(&mut self, line: &Line<'_>, u: VertexId, v: VertexId) -> Result<(), IoError> {
        if u == v {
            return Err(line.err(format!("self-loop `{u} {v}` is not allowed")));
        }
        let key = (u.min(v), u.max(v));
        match self.seen.insert(key, line.number) {
            None => Ok(()),
            Some(first) => Err(line.err(format!(
                "duplicate edge `{u} {v}` (first seen on line {first})"
            ))),
        }
    }
}

/// Reads an edge list (with optional separate attribute map from raw id to attribute)
/// from a reader, compacting arbitrary vertex ids to `0..n`.
///
/// Duplicate edges (in either direction) and self-loops are explicit errors rather
/// than silent compaction surprises.
///
/// Returns the graph and the mapping `original_id -> compact_id`.
pub fn read_edge_list<R: Read>(
    reader: R,
    attributes: &HashMap<u64, Attribute>,
) -> Result<(AttributedGraph, HashMap<u64, VertexId>), IoError> {
    let mut lines = CountedLines::new(BufReader::new(reader));
    let mut id_map: HashMap<u64, VertexId> = HashMap::new();
    let mut attrs: Vec<Attribute> = Vec::new();
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut dedup = EdgeDedup::new();

    while let Some(line) = lines.next_line()? {
        if is_skippable(line.text.trim()) {
            continue;
        }
        let (u, v) = two_fields(&line, "u v")?;
        let raw_u = parse_int(&line, u, "vertex id", u64::MAX)?;
        let raw_v = parse_int(&line, v, "vertex id", u64::MAX)?;
        if raw_u == raw_v {
            return Err(line.err(format!("self-loop `{raw_u} {raw_v}` is not allowed")));
        }
        let mut intern = |raw: u64| {
            *id_map.entry(raw).or_insert_with(|| {
                let id = attrs.len() as VertexId;
                attrs.push(attributes.get(&raw).copied().unwrap_or(Attribute::A));
                id
            })
        };
        let (cu, cv) = (intern(raw_u), intern(raw_v));
        // Report raw ids, not compacted ones, so the message matches the input.
        dedup.check(&line, cu, cv).map_err(|e| match e {
            IoError::Parse {
                line,
                byte,
                message,
            } => IoError::Parse {
                line,
                byte,
                message: message.replacen(
                    &format!("`{cu} {cv}`"),
                    &format!("`{raw_u} {raw_v}`"),
                    1,
                ),
            },
            other => other,
        })?;
        edges.push((cu, cv));
    }

    let mut builder = GraphBuilder::with_attributes(attrs);
    builder.add_edges(edges);
    let graph = builder.build().map_err(|e| IoError::Parse {
        line: 0,
        byte: 0,
        message: e.to_string(),
    })?;
    Ok((graph, id_map))
}

/// Reads an attribute list (`raw_id attr` per line) into a map usable by
/// [`read_edge_list`].
pub fn read_attribute_list<R: Read>(reader: R) -> Result<HashMap<u64, Attribute>, IoError> {
    let mut lines = CountedLines::new(BufReader::new(reader));
    let mut map = HashMap::new();
    while let Some(line) = lines.next_line()? {
        if is_skippable(line.text.trim()) {
            continue;
        }
        let (v, a) = two_fields(&line, "vertex attribute")?;
        let v = parse_int(&line, v, "vertex id", u64::MAX)?;
        let attr = Attribute::parse(a)
            .ok_or_else(|| line.err_at(a, format!("invalid attribute `{a}` (expected a/b/0/1)")))?;
        map.insert(v, attr);
    }
    Ok(map)
}

/// Writes a graph in the combined single-file format:
///
/// ```text
/// # maxfairclique graph v1
/// n <num_vertices>
/// v <id> <attr>      (one per vertex)
/// e <u> <v>          (one per edge)
/// ```
pub fn write_graph<W: Write>(graph: &AttributedGraph, writer: W) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# maxfairclique graph v1")?;
    writeln!(w, "n {}", graph.num_vertices())?;
    for v in graph.vertices() {
        writeln!(w, "v {} {}", v, graph.attribute(v))?;
    }
    for &(u, v) in graph.edge_list() {
        writeln!(w, "e {u} {v}")?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a graph written by [`write_graph`].
///
/// Ids out of the declared range, duplicate edges, and self-loops are explicit
/// errors carrying the offending line number and byte offset.
pub fn read_graph<R: Read>(reader: R) -> Result<AttributedGraph, IoError> {
    let mut lines = CountedLines::new(BufReader::new(reader));
    let mut builder: Option<GraphBuilder> = None;
    let mut dedup = EdgeDedup::new();
    while let Some(line) = lines.next_line()? {
        let trimmed = line.text.trim();
        if is_skippable(trimmed) {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let tag = parts.next().unwrap_or_default();
        match tag {
            "n" => {
                if builder.is_some() {
                    return Err(line.err("duplicate `n` header line".into()));
                }
                let token = parts
                    .next()
                    .ok_or_else(|| line.err("missing vertex count".into()))?;
                let n = parse_int(&line, token, "vertex count", u64::MAX)? as usize;
                builder = Some(GraphBuilder::new(n));
            }
            "v" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| line.err("`v` line before `n` line".into()))?;
                let token = parts
                    .next()
                    .ok_or_else(|| line.err("missing vertex id".into()))?;
                let id = parse_int(&line, token, "vertex id", VertexId::MAX as u64)? as VertexId;
                if (id as usize) >= b.num_vertices() {
                    return Err(line.err_at(token, format!("vertex id {id} out of declared range")));
                }
                let attr_token = parts
                    .next()
                    .ok_or_else(|| line.err("missing attribute".into()))?;
                let attr = Attribute::parse(attr_token).ok_or_else(|| {
                    line.err_at(attr_token, format!("invalid attribute `{attr_token}`"))
                })?;
                b.set_attribute(id, attr);
            }
            "e" => {
                let n = builder
                    .as_ref()
                    .map(GraphBuilder::num_vertices)
                    .ok_or_else(|| line.err("`e` line before `n` line".into()))?;
                let endpoint = |parts: &mut std::str::SplitWhitespace<'_>| {
                    let token = parts
                        .next()
                        .ok_or_else(|| line.err("missing edge endpoint".into()))?;
                    let id =
                        parse_int(&line, token, "edge endpoint", VertexId::MAX as u64)? as VertexId;
                    if (id as usize) >= n {
                        return Err(
                            line.err_at(token, format!("edge endpoint {id} out of declared range"))
                        );
                    }
                    Ok(id)
                };
                let u = endpoint(&mut parts)?;
                let v = endpoint(&mut parts)?;
                dedup.check(&line, u, v)?;
                builder.as_mut().expect("builder exists").add_edge(u, v);
            }
            other => return Err(line.err(format!("unknown record tag `{other}`"))),
        }
    }
    let builder = builder.ok_or(IoError::Parse {
        line: 0,
        byte: 0,
        message: "missing `n` header line".into(),
    })?;
    builder.build().map_err(|e| IoError::Parse {
        line: 0,
        byte: 0,
        message: e.to_string(),
    })
}

/// Convenience wrapper: writes a graph to a file path.
pub fn write_graph_to_path<P: AsRef<Path>>(
    graph: &AttributedGraph,
    path: P,
) -> Result<(), IoError> {
    let file = std::fs::File::create(path)?;
    write_graph(graph, file)
}

/// Convenience wrapper: reads a graph from a file path.
pub fn read_graph_from_path<P: AsRef<Path>>(path: P) -> Result<AttributedGraph, IoError> {
    let file = std::fs::File::open(path)?;
    read_graph(file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    #[test]
    fn edge_list_roundtrip_with_attributes() {
        let attr_text = "10 a\n20 b\n30 a\n";
        let edge_text = "# a comment\n10 20\n20 30\n% another comment\n10 30\n";
        let attrs = read_attribute_list(attr_text.as_bytes()).unwrap();
        assert_eq!(attrs.len(), 3);
        let (g, id_map) = read_edge_list(edge_text.as_bytes(), &attrs).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        let v20 = id_map[&20];
        assert_eq!(g.attribute(v20), Attribute::B);
        assert!(g.is_clique(&[0, 1, 2]));
    }

    #[test]
    fn edge_list_defaults_missing_attributes_to_a() {
        let (g, _) = read_edge_list("1 2\n".as_bytes(), &HashMap::new()).unwrap();
        assert_eq!(g.attribute(0), Attribute::A);
        assert_eq!(g.attribute(1), Attribute::A);
    }

    #[test]
    fn edge_list_parse_errors_carry_line_numbers_and_byte_offsets() {
        let err = read_edge_list("1 2\nbogus\n".as_bytes(), &HashMap::new()).unwrap_err();
        match err {
            IoError::Parse { line, byte, .. } => {
                assert_eq!(line, 2);
                assert_eq!(byte, 4); // "1 2\n" is 4 bytes
            }
            other => panic!("expected parse error, got {other}"),
        }
        let err = read_edge_list("1 x\n".as_bytes(), &HashMap::new()).unwrap_err();
        assert!(err.to_string().contains("invalid vertex id"));
        match err {
            IoError::Parse { line, byte, .. } => {
                assert_eq!(line, 1);
                assert_eq!(byte, 2); // `x` starts at byte 2
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn edge_list_pinpoints_oversized_tokens() {
        // 2^64 is one past u64::MAX; all digits, so it's oversized rather than junk.
        let text = "# header\n7 18446744073709551616\n";
        let err = read_edge_list(text.as_bytes(), &HashMap::new()).unwrap_err();
        match &err {
            IoError::Parse {
                line,
                byte,
                message,
            } => {
                assert_eq!(*line, 2);
                assert_eq!(*byte, 11); // 9 header bytes + "7 "
                assert!(message.contains("exceeds the maximum"), "{message}");
                assert!(message.contains("byte 11"), "{message}");
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn edge_list_rejects_self_loops_and_duplicates() {
        let err = read_edge_list("1 2\n3 3\n".as_bytes(), &HashMap::new()).unwrap_err();
        match &err {
            IoError::Parse { line, message, .. } => {
                assert_eq!(*line, 2);
                assert!(message.contains("self-loop `3 3`"), "{message}");
            }
            other => panic!("expected parse error, got {other}"),
        }
        // Duplicate in the opposite direction, reported with raw (uncompacted) ids.
        let err = read_edge_list("10 20\n5 6\n20 10\n".as_bytes(), &HashMap::new()).unwrap_err();
        match &err {
            IoError::Parse { line, message, .. } => {
                assert_eq!(*line, 3);
                assert!(message.contains("duplicate edge `20 10`"), "{message}");
                assert!(message.contains("first seen on line 1"), "{message}");
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn attribute_list_rejects_bad_values() {
        let err = read_attribute_list("5 z\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("invalid attribute"));
    }

    #[test]
    fn combined_format_roundtrip() {
        let g = fixtures::fig1_graph();
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let g2 = read_graph(buf.as_slice()).unwrap();
        assert_eq!(g.num_vertices(), g2.num_vertices());
        assert_eq!(g.num_edges(), g2.num_edges());
        assert_eq!(g.attributes(), g2.attributes());
        assert_eq!(g.edge_list(), g2.edge_list());
    }

    #[test]
    fn combined_format_rejects_malformed_input() {
        assert!(read_graph("v 0 a\n".as_bytes()).is_err()); // v before n
        assert!(read_graph("n 2\nv 5 a\n".as_bytes()).is_err()); // id out of range
        assert!(read_graph("n 2\nx 1 2\n".as_bytes()).is_err()); // unknown tag
        assert!(read_graph("".as_bytes()).is_err()); // missing header
        assert!(read_graph("n 2\nn 3\n".as_bytes()).is_err()); // duplicate header
    }

    #[test]
    fn combined_format_rejects_self_loops_duplicates_and_range_errors_with_positions() {
        let err = read_graph("n 3\ne 1 1\n".as_bytes()).unwrap_err();
        match &err {
            IoError::Parse { line, message, .. } => {
                assert_eq!(*line, 2);
                assert!(message.contains("self-loop"), "{message}");
            }
            other => panic!("expected parse error, got {other}"),
        }
        let err = read_graph("n 3\ne 0 1\ne 1 0\n".as_bytes()).unwrap_err();
        match &err {
            IoError::Parse { line, message, .. } => {
                assert_eq!(*line, 3);
                assert!(message.contains("duplicate edge `1 0`"), "{message}");
                assert!(message.contains("first seen on line 2"), "{message}");
            }
            other => panic!("expected parse error, got {other}"),
        }
        // Out-of-range endpoints now fail at the offending line, not at build time.
        let err = read_graph("n 3\ne 0 9\n".as_bytes()).unwrap_err();
        match &err {
            IoError::Parse {
                line,
                byte,
                message,
            } => {
                assert_eq!(*line, 2);
                assert_eq!(*byte, 8); // "n 3\n" (4) + "e 0 " (4)
                assert!(message.contains("out of declared range"), "{message}");
            }
            other => panic!("expected parse error, got {other}"),
        }
        // An id too large for a 32-bit vertex id is an oversized token.
        let err = read_graph("n 2\nv 4294967296 a\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("exceeds the maximum"), "got {err}");
    }

    #[test]
    fn file_roundtrip() {
        let g = fixtures::balanced_clique(5);
        let dir = std::env::temp_dir().join("rfc_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("clique5.graph");
        write_graph_to_path(&g, &path).unwrap();
        let g2 = read_graph_from_path(&path).unwrap();
        assert_eq!(g, g2);
        std::fs::remove_file(&path).ok();
    }
}
