//! Plain-text graph input/output.
//!
//! Two simple formats are supported, matching how the paper's datasets are distributed:
//!
//! * **Edge list**: one `u v` pair per line (whitespace separated). Lines starting with
//!   `#` or `%` are comments. Vertex ids may be arbitrary non-negative integers; they
//!   are compacted to `0..n`.
//! * **Attribute list**: one `v attr` pair per line, where `attr` is `a`/`b`/`0`/`1`.
//!   Vertices without an explicit attribute default to `a`.
//!
//! There is also a single-file combined format (`write_graph` / `read_graph`) used by
//! the examples to snapshot generated datasets.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::attr::Attribute;
use crate::builder::GraphBuilder;
use crate::graph::{AttributedGraph, VertexId};

/// Errors arising while parsing graph text formats.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line, reported with its 1-based line number.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description.
        message: String,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse { line, message } => write!(f, "parse error on line {line}: {message}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Reads an edge list (with optional separate attribute map from raw id to attribute)
/// from a reader, compacting arbitrary vertex ids to `0..n`.
///
/// Returns the graph and the mapping `original_id -> compact_id`.
pub fn read_edge_list<R: Read>(
    reader: R,
    attributes: &HashMap<u64, Attribute>,
) -> Result<(AttributedGraph, HashMap<u64, VertexId>), IoError> {
    let reader = BufReader::new(reader);
    let mut id_map: HashMap<u64, VertexId> = HashMap::new();
    let mut attrs: Vec<Attribute> = Vec::new();
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();

    let intern = |raw: u64, attrs: &mut Vec<Attribute>, id_map: &mut HashMap<u64, VertexId>| {
        *id_map.entry(raw).or_insert_with(|| {
            let id = attrs.len() as VertexId;
            attrs.push(attributes.get(&raw).copied().unwrap_or(Attribute::A));
            id
        })
    };

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let (u, v) = match (parts.next(), parts.next()) {
            (Some(u), Some(v)) => (u, v),
            _ => {
                return Err(IoError::Parse {
                    line: lineno + 1,
                    message: format!("expected `u v`, got `{trimmed}`"),
                })
            }
        };
        let parse = |s: &str, lineno: usize| -> Result<u64, IoError> {
            s.parse::<u64>().map_err(|_| IoError::Parse {
                line: lineno + 1,
                message: format!("invalid vertex id `{s}`"),
            })
        };
        let (u, v) = (parse(u, lineno)?, parse(v, lineno)?);
        let cu = intern(u, &mut attrs, &mut id_map);
        let cv = intern(v, &mut attrs, &mut id_map);
        edges.push((cu, cv));
    }

    let mut builder = GraphBuilder::with_attributes(attrs);
    builder.add_edges(edges);
    let graph = builder.build().map_err(|e| IoError::Parse {
        line: 0,
        message: e.to_string(),
    })?;
    Ok((graph, id_map))
}

/// Reads an attribute list (`raw_id attr` per line) into a map usable by
/// [`read_edge_list`].
pub fn read_attribute_list<R: Read>(reader: R) -> Result<HashMap<u64, Attribute>, IoError> {
    let reader = BufReader::new(reader);
    let mut map = HashMap::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let (v, a) = match (parts.next(), parts.next()) {
            (Some(v), Some(a)) => (v, a),
            _ => {
                return Err(IoError::Parse {
                    line: lineno + 1,
                    message: format!("expected `vertex attribute`, got `{trimmed}`"),
                })
            }
        };
        let v: u64 = v.parse().map_err(|_| IoError::Parse {
            line: lineno + 1,
            message: format!("invalid vertex id `{v}`"),
        })?;
        let attr = Attribute::parse(a).ok_or_else(|| IoError::Parse {
            line: lineno + 1,
            message: format!("invalid attribute `{a}` (expected a/b/0/1)"),
        })?;
        map.insert(v, attr);
    }
    Ok(map)
}

/// Writes a graph in the combined single-file format:
///
/// ```text
/// # maxfairclique graph v1
/// n <num_vertices>
/// v <id> <attr>      (one per vertex)
/// e <u> <v>          (one per edge)
/// ```
pub fn write_graph<W: Write>(graph: &AttributedGraph, writer: W) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# maxfairclique graph v1")?;
    writeln!(w, "n {}", graph.num_vertices())?;
    for v in graph.vertices() {
        writeln!(w, "v {} {}", v, graph.attribute(v))?;
    }
    for &(u, v) in graph.edge_list() {
        writeln!(w, "e {u} {v}")?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a graph written by [`write_graph`].
pub fn read_graph<R: Read>(reader: R) -> Result<AttributedGraph, IoError> {
    let reader = BufReader::new(reader);
    let mut builder: Option<GraphBuilder> = None;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let tag = parts.next().unwrap_or_default();
        let err = |message: String| IoError::Parse {
            line: lineno + 1,
            message,
        };
        match tag {
            "n" => {
                let n: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("invalid vertex count".into()))?;
                builder = Some(GraphBuilder::new(n));
            }
            "v" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| err("`v` line before `n` line".into()))?;
                let id: VertexId = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("invalid vertex id".into()))?;
                let attr = parts
                    .next()
                    .and_then(Attribute::parse)
                    .ok_or_else(|| err("invalid attribute".into()))?;
                if (id as usize) >= b.num_vertices() {
                    return Err(err(format!("vertex id {id} out of declared range")));
                }
                b.set_attribute(id, attr);
            }
            "e" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| err("`e` line before `n` line".into()))?;
                let u: VertexId = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("invalid edge endpoint".into()))?;
                let v: VertexId = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("invalid edge endpoint".into()))?;
                b.add_edge(u, v);
            }
            other => return Err(err(format!("unknown record tag `{other}`"))),
        }
    }
    let builder = builder.ok_or(IoError::Parse {
        line: 0,
        message: "missing `n` header line".into(),
    })?;
    builder.build().map_err(|e| IoError::Parse {
        line: 0,
        message: e.to_string(),
    })
}

/// Convenience wrapper: writes a graph to a file path.
pub fn write_graph_to_path<P: AsRef<Path>>(
    graph: &AttributedGraph,
    path: P,
) -> Result<(), IoError> {
    let file = std::fs::File::create(path)?;
    write_graph(graph, file)
}

/// Convenience wrapper: reads a graph from a file path.
pub fn read_graph_from_path<P: AsRef<Path>>(path: P) -> Result<AttributedGraph, IoError> {
    let file = std::fs::File::open(path)?;
    read_graph(file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    #[test]
    fn edge_list_roundtrip_with_attributes() {
        let attr_text = "10 a\n20 b\n30 a\n";
        let edge_text = "# a comment\n10 20\n20 30\n% another comment\n10 30\n";
        let attrs = read_attribute_list(attr_text.as_bytes()).unwrap();
        assert_eq!(attrs.len(), 3);
        let (g, id_map) = read_edge_list(edge_text.as_bytes(), &attrs).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        let v20 = id_map[&20];
        assert_eq!(g.attribute(v20), Attribute::B);
        assert!(g.is_clique(&[0, 1, 2]));
    }

    #[test]
    fn edge_list_defaults_missing_attributes_to_a() {
        let (g, _) = read_edge_list("1 2\n".as_bytes(), &HashMap::new()).unwrap();
        assert_eq!(g.attribute(0), Attribute::A);
        assert_eq!(g.attribute(1), Attribute::A);
    }

    #[test]
    fn edge_list_parse_errors_carry_line_numbers() {
        let err = read_edge_list("1 2\nbogus\n".as_bytes(), &HashMap::new()).unwrap_err();
        match err {
            IoError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
        let err = read_edge_list("1 x\n".as_bytes(), &HashMap::new()).unwrap_err();
        assert!(err.to_string().contains("invalid vertex id"));
    }

    #[test]
    fn attribute_list_rejects_bad_values() {
        let err = read_attribute_list("5 z\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("invalid attribute"));
    }

    #[test]
    fn combined_format_roundtrip() {
        let g = fixtures::fig1_graph();
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let g2 = read_graph(buf.as_slice()).unwrap();
        assert_eq!(g.num_vertices(), g2.num_vertices());
        assert_eq!(g.num_edges(), g2.num_edges());
        assert_eq!(g.attributes(), g2.attributes());
        assert_eq!(g.edge_list(), g2.edge_list());
    }

    #[test]
    fn combined_format_rejects_malformed_input() {
        assert!(read_graph("v 0 a\n".as_bytes()).is_err()); // v before n
        assert!(read_graph("n 2\nv 5 a\n".as_bytes()).is_err()); // id out of range
        assert!(read_graph("n 2\nx 1 2\n".as_bytes()).is_err()); // unknown tag
        assert!(read_graph("".as_bytes()).is_err()); // missing header
    }

    #[test]
    fn file_roundtrip() {
        let g = fixtures::balanced_clique(5);
        let dir = std::env::temp_dir().join("rfc_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("clique5.graph");
        write_graph_to_path(&g, &path).unwrap();
        let g2 = read_graph_from_path(&path).unwrap();
        assert_eq!(g, g2);
        std::fs::remove_file(&path).ok();
    }
}
