//! One shared hand-rolled JSON layer for the whole workspace.
//!
//! The container has no crates registry, so there is no `serde`; every JSON producer
//! and consumer in the workspace (the `UpdateOp` JSONL stream, the `enumerate
//! --format jsonl` sink, the bench `BENCH_*.json` reports, and the `rfc-serve` wire
//! protocol) goes through this module instead of growing its own ad-hoc escaping and
//! field-scraping. That fixes a real bug class: the previous per-crate escapers only
//! handled `"` and `\`, so a control character in a string (e.g. a graph name taken
//! from untrusted client input) would emit invalid JSON.
//!
//! Two layers:
//!
//! * [`escape_into`] / [`escaped`] — correct JSON string escaping (quote, backslash,
//!   and all control characters below `0x20`).
//! * [`JsonValue`] — a tiny recursive-descent parser and writer for complete JSON
//!   values, with the accessor helpers ([`get`](JsonValue::get),
//!   [`as_u64`](JsonValue::as_u64), …) that protocol code needs. Object key order is
//!   preserved. The parser enforces a nesting-depth limit so a hostile request line
//!   cannot overflow the stack of a serving thread.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth [`JsonValue::parse`] accepts. Deep enough for any document
/// the workspace produces, shallow enough that parsing untrusted input can never
/// overflow a thread stack.
pub const MAX_DEPTH: usize = 64;

/// Appends `s` to `out` JSON-escaped (without surrounding quotes).
///
/// Escapes `"` and `\`, uses the conventional short forms for the common control
/// characters (`\n`, `\r`, `\t`, `\u{8}`, `\u{c}`) and `\u00XX` for the rest.
/// Everything else — including non-ASCII — is passed through verbatim, which is
/// valid JSON (strings are UTF-8).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Returns `s` JSON-escaped (without surrounding quotes). See [`escape_into`].
pub fn escaped(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    escape_into(&mut out, s);
    out
}

/// A parse error with the byte offset where parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// A parsed JSON value.
///
/// Numbers are stored as `f64` (like JavaScript); the writer renders values that are
/// mathematically integers without a fractional part, so `u64` round-trips up to
/// 2^53 — far beyond any vertex id or counter in this workspace.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string (unescaped).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses one complete JSON value from `input` (surrounding whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// Convenience constructor for an object from key/value pairs.
    pub fn object(pairs: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience constructor for a string value.
    pub fn string(s: impl Into<String>) -> JsonValue {
        JsonValue::String(s.into())
    }

    /// Looks up a field of an object (`None` for other variants or missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n >= 0.0 && n.fract() == 0.0 && n <= 9.007_199_254_740_992e15 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// [`as_u64`](Self::as_u64) narrowed to `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes the value as compact single-line JSON.
    pub fn write_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => write_number(out, *n),
            JsonValue::String(s) => {
                out.push('"');
                escape_into(out, s);
                out.push('"');
            }
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_into(out, k);
                    out.push_str("\":");
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write_into(&mut out);
        f.write_str(&out)
    }
}

impl From<u64> for JsonValue {
    fn from(n: u64) -> Self {
        JsonValue::Number(n as f64)
    }
}

impl From<usize> for JsonValue {
    fn from(n: usize) -> Self {
        JsonValue::Number(n as f64)
    }
}

impl From<u32> for JsonValue {
    fn from(n: u32) -> Self {
        JsonValue::Number(f64::from(n))
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::String(s.to_string())
    }
}

impl From<f64> for JsonValue {
    fn from(n: f64) -> Self {
        JsonValue::Number(n)
    }
}

/// Writes `n` as an integer when it is one (the common case for ids/counters),
/// otherwise with enough precision to round-trip.
fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; null is the conventional stand-in.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() <= 9.007_199_254_740_992e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::String),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected character `{}`", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut pairs: Vec<(String, JsonValue)> = Vec::new();
        let mut seen: BTreeMap<String, usize> = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            // Last duplicate wins, like every mainstream JSON library.
            if let Some(&i) = seen.get(&key) {
                pairs[i].1 = value;
            } else {
                seen.insert(key.clone(), pairs.len());
                pairs.push((key, value));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs for characters outside the BMP.
                            let c = if (0xd800..0xdc00).contains(&code) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined =
                                        0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            continue; // hex4 advanced past the digits already
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"));
                }
                Some(_) => {
                    // Copy one UTF-8 character (multi-byte sequences included).
                    let start = self.pos;
                    let rest = &self.bytes[start..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code =
            u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid \\u escape digits"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_control_characters() {
        assert_eq!(escaped("plain"), "plain");
        assert_eq!(escaped("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escaped("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(escaped("\u{8}\u{c}\r"), "\\b\\f\\r");
        assert_eq!(escaped("\u{1}"), "\\u0001");
        assert_eq!(escaped("héllo"), "héllo"); // non-ASCII passes through
    }

    #[test]
    fn escaped_strings_parse_back() {
        for s in ["", "a\"b", "c\\d", "e\nf\tg", "\u{1}\u{1f}", "emoji: 🦀"] {
            let json = format!("\"{}\"", escaped(s));
            assert_eq!(
                JsonValue::parse(&json).unwrap(),
                JsonValue::String(s.to_string()),
                "{json}"
            );
        }
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(JsonValue::parse("42").unwrap(), JsonValue::Number(42.0));
        assert_eq!(JsonValue::parse("-3.5").unwrap(), JsonValue::Number(-3.5));
        assert_eq!(JsonValue::parse("1e3").unwrap(), JsonValue::Number(1000.0));
        assert_eq!(
            JsonValue::parse("\"hi\"").unwrap(),
            JsonValue::String("hi".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v =
            JsonValue::parse(r#"{"op":"solve","k":3,"tags":["a","b"],"deep":{"x":null}}"#).unwrap();
        assert_eq!(v.get("op").and_then(JsonValue::as_str), Some("solve"));
        assert_eq!(v.get("k").and_then(JsonValue::as_u64), Some(3));
        assert_eq!(
            v.get("tags").and_then(JsonValue::as_array).unwrap().len(),
            2
        );
        assert_eq!(v.get("deep").unwrap().get("x"), Some(&JsonValue::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "not json",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\" 1}",
            "\"unterminated",
            "01x",
            "{\"a\":1} trailing",
            "\"bad \\q escape\"",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn rejects_excessive_nesting() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        let err = JsonValue::parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        let ok = "[".repeat(8) + &"]".repeat(8);
        assert!(JsonValue::parse(&ok).is_ok());
    }

    #[test]
    fn writer_round_trips() {
        let v = JsonValue::object(vec![
            ("name", JsonValue::string("a\"b\nc")),
            ("n", JsonValue::from(15u64)),
            ("pi", JsonValue::from(3.25)),
            ("ok", JsonValue::from(true)),
            (
                "items",
                JsonValue::Array(vec![JsonValue::Null, JsonValue::from(7u64)]),
            ),
        ]);
        let text = v.to_string();
        assert_eq!(JsonValue::parse(&text).unwrap(), v);
        // Integers render without a fractional part.
        assert!(text.contains("\"n\":15"));
        assert!(text.contains("\"pi\":3.25"));
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let v = JsonValue::parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").and_then(JsonValue::as_u64), Some(2));
        match &v {
            JsonValue::Object(pairs) => assert_eq!(pairs.len(), 1),
            _ => unreachable!(),
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(
            JsonValue::parse(r#""Aé""#).unwrap(),
            JsonValue::String("Aé".into())
        );
        // Surrogate pair.
        assert_eq!(
            JsonValue::parse(r#""🦀""#).unwrap(),
            JsonValue::String("🦀".into())
        );
        assert!(JsonValue::parse(r#""\ud83e""#).is_err()); // lone high surrogate
    }

    #[test]
    fn integer_accessors_are_exact() {
        assert_eq!(JsonValue::Number(7.0).as_u64(), Some(7));
        assert_eq!(JsonValue::Number(7.5).as_u64(), None);
        assert_eq!(JsonValue::Number(-1.0).as_u64(), None);
        assert_eq!(JsonValue::Number(7.0).as_usize(), Some(7));
        assert_eq!(JsonValue::string("7").as_u64(), None);
    }
}
