//! # rfc-graph — attributed-graph substrate for maximum fair clique search
//!
//! This crate provides the graph machinery that the maximum relative fair clique
//! algorithms (crate `rfc-core`) are built on:
//!
//! * [`AttributedGraph`] — an immutable CSR (compressed sparse row) representation of an
//!   undirected, unweighted graph whose vertices carry a binary attribute
//!   ([`Attribute::A`] / [`Attribute::B`]), built through [`GraphBuilder`].
//! * [`coloring`] — the degree-based greedy proper coloring used throughout the paper.
//! * [`cores`] — classic k-core decomposition, degeneracy, degeneracy ordering and the
//!   h-index of a graph (Lemmas 10–11 of the paper).
//! * [`colorful`] — colorful degrees, colorful k-cores, colorful core numbers, colorful
//!   degeneracy, the colorful h-index, and the *enhanced* colorful degree / k-core
//!   (Definitions 2–5 and 8–10 of the paper).
//! * [`components`] — connected components.
//! * [`delta`] — dynamic-graph support: [`GraphDelta`] records batches of edge/vertex
//!   insertions and deletions over the immutable CSR and applies them in one pass.
//! * [`bitset`] — `u64`-word bitsets and dense bit-matrix adjacency for the
//!   branch-and-bound hot loop.
//! * [`subgraph`] — induced subgraphs and edge-mask subgraphs with vertex-id mappings.
//! * [`io`] — plain-text edge-list / attribute-list readers and writers.
//! * [`json`] — the one shared hand-rolled JSON layer (string escaping + a small
//!   [`JsonValue`] parser/writer) used by the JSONL update streams, the enumeration
//!   sink, the bench reports, and the `rfc-serve` wire protocol.
//! * [`store`] — the [`GraphStore`] abstraction the scale-tier reduction passes run
//!   against, implemented by [`AttributedGraph`] and [`DiskCsr`].
//! * [`disk`] — the `.rfcg` binary on-disk CSR format: streaming [`CsrWriter`],
//!   out-of-core [`EdgeSpool`] assembly, and the [`DiskCsr`] reader.
//!
//! The crate is dependency-free (std only) and designed so that the branch-and-bound
//! search in `rfc-core` can cheaply build induced subgraphs of search instances and run
//! colorings / decompositions on them.
//!
//! ## Quick example
//!
//! ```
//! use rfc_graph::{Attribute, GraphBuilder, coloring, colorful};
//!
//! // A triangle {0,1,2} plus a pendant vertex 3.
//! let mut b = GraphBuilder::new(4);
//! b.set_attribute(0, Attribute::A);
//! b.set_attribute(1, Attribute::B);
//! b.set_attribute(2, Attribute::A);
//! b.set_attribute(3, Attribute::B);
//! b.add_edge(0, 1);
//! b.add_edge(1, 2);
//! b.add_edge(0, 2);
//! b.add_edge(2, 3);
//! let g = b.build().unwrap();
//!
//! assert_eq!(g.num_vertices(), 4);
//! assert_eq!(g.num_edges(), 4);
//!
//! let coloring = coloring::greedy_coloring(&g);
//! assert!(coloring.num_colors >= 3); // the triangle needs three colors
//!
//! let cd = colorful::colorful_degrees(&g, &coloring);
//! assert_eq!(cd.min_degree(0), 1); // vertex 0 sees 1 distinct a-color and 1 b-color
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attr;
pub mod bitset;
pub mod builder;
pub mod colorful;
pub mod coloring;
pub mod components;
pub mod cores;
pub mod delta;
pub mod disk;
pub mod fixtures;
pub mod graph;
pub mod io;
pub mod json;
pub mod store;
pub mod subgraph;

pub use attr::{Attribute, AttributeCounts};
pub use bitset::{BitMatrix, Bitset, BitsetPool};
pub use builder::{BuildError, GraphBuilder};
pub use coloring::Coloring;
pub use delta::{DeltaError, GraphDelta, UpdateOp};
pub use disk::{write_rfcg, CsrSummary, CsrWriter, DiskCsr, EdgeSpool, RfcgError};
pub use graph::{AttributedGraph, EdgeId, GraphStats, VertexId};
pub use json::{JsonError, JsonValue};
pub use store::GraphStore;
pub use subgraph::InducedSubgraph;

/// Commonly used items, for glob import in examples and downstream crates.
pub mod prelude {
    pub use crate::attr::{Attribute, AttributeCounts};
    pub use crate::builder::GraphBuilder;
    pub use crate::coloring::{greedy_coloring, Coloring};
    pub use crate::graph::{AttributedGraph, EdgeId, VertexId};
}
