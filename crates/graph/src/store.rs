//! The [`GraphStore`] abstraction: graph storage the reduction pipeline can run
//! against without knowing whether the graph is resident in memory.
//!
//! Everything built before the scale tier assumed a fully materialized
//! [`AttributedGraph`]. That is the right representation for the *residual* graph the
//! reduction pipeline hands to the branch-and-bound search — small, bit-matrix
//! friendly, random access — but it is the wrong representation for the raw
//! multi-million-vertex input, which may be orders of magnitude larger than the
//! residual and should never be materialized as a `Vec<(u, v)>` edge list.
//!
//! [`GraphStore`] is the minimal contract the *streaming first-pass reduction*
//! (`rfc_core::reduction::streaming`) needs:
//!
//! * per-vertex metadata in O(1): [`attribute`](GraphStore::attribute) and
//!   [`degree`](GraphStore::degree);
//! * a **sequential adjacency scan** in vertex order
//!   ([`scan_adjacency`](GraphStore::scan_adjacency)) — the bulk primitive every
//!   streaming pass is built on, implemented with buffered sequential I/O by the
//!   on-disk store;
//! * **targeted random access** ([`neighbors_into`](GraphStore::neighbors_into)) for
//!   the peeling cascade, which only ever touches the adjacency of vertices that
//!   just died.
//!
//! Two implementations exist: [`AttributedGraph`] (adapted below, zero behavior
//! change) and [`crate::disk::DiskCsr`] (the binary on-disk CSR behind the `.rfcg`
//! format). Search, enumeration and the dynamic layer keep operating on the
//! in-memory residual `AttributedGraph` the pipeline produces.

use std::io;

use crate::attr::{Attribute, AttributeCounts};
use crate::graph::{AttributedGraph, VertexId};

/// Storage-agnostic read access to an undirected attributed graph.
///
/// Vertex ids are dense (`0..n`), neighbor lists are sorted ascending and free of
/// self-loops and duplicates — the same canonical shape [`AttributedGraph`]
/// guarantees. Implementations may perform I/O; fallible methods surface
/// [`io::Error`] rather than panicking.
pub trait GraphStore {
    /// Number of vertices `n`.
    fn num_vertices(&self) -> usize;

    /// Number of undirected edges `m`.
    fn num_edges(&self) -> usize;

    /// The attribute of vertex `v`.
    fn attribute(&self, v: VertexId) -> Attribute;

    /// The degree of vertex `v`, in O(1) (no adjacency I/O).
    fn degree(&self, v: VertexId) -> usize;

    /// Appends the sorted neighbor list of `v` to `buf` (which is *not* cleared).
    ///
    /// This is the random-access primitive; on a disk-backed store it costs one
    /// seek + read of `degree(v)` entries, so callers should reserve it for
    /// targeted lookups (e.g. the peeling cascade) and use
    /// [`scan_adjacency`](GraphStore::scan_adjacency) for bulk passes.
    fn neighbors_into(&self, v: VertexId, buf: &mut Vec<VertexId>) -> io::Result<()>;

    /// Streams the adjacency of every vertex in ascending vertex order:
    /// `f(v, neighbors)` is called exactly once per vertex, including isolated
    /// vertices (with an empty slice). Implementations perform sequential,
    /// buffered I/O — one full pass over the neighbor section.
    fn scan_adjacency(&self, f: &mut dyn FnMut(VertexId, &[VertexId])) -> io::Result<()>;

    /// Estimated bytes of process-resident memory this store holds onto (indexes,
    /// caches, resident sections) — *not* the on-disk footprint. Used by the scale
    /// tier to assert that reducing a huge graph never materializes it.
    fn resident_bytes(&self) -> usize;

    /// Adjacency bytes this store has served from disk so far. Purely in-memory
    /// stores (and resident-mode disk stores) report 0, the default.
    fn disk_bytes_read(&self) -> u64 {
        0
    }

    /// Counts of vertices per attribute over the whole store. The default scans
    /// the attribute metadata, which every implementation holds resident.
    fn attribute_counts(&self) -> AttributeCounts {
        let mut counts = AttributeCounts::new();
        for v in 0..self.num_vertices() as VertexId {
            counts.add(self.attribute(v));
        }
        counts
    }
}

impl GraphStore for AttributedGraph {
    fn num_vertices(&self) -> usize {
        AttributedGraph::num_vertices(self)
    }

    fn num_edges(&self) -> usize {
        AttributedGraph::num_edges(self)
    }

    fn attribute(&self, v: VertexId) -> Attribute {
        AttributedGraph::attribute(self, v)
    }

    fn degree(&self, v: VertexId) -> usize {
        AttributedGraph::degree(self, v)
    }

    fn neighbors_into(&self, v: VertexId, buf: &mut Vec<VertexId>) -> io::Result<()> {
        buf.extend_from_slice(self.neighbors(v));
        Ok(())
    }

    fn scan_adjacency(&self, f: &mut dyn FnMut(VertexId, &[VertexId])) -> io::Result<()> {
        for v in 0..AttributedGraph::num_vertices(self) as VertexId {
            f(v, self.neighbors(v));
        }
        Ok(())
    }

    fn resident_bytes(&self) -> usize {
        self.stats().csr_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    #[test]
    fn attributed_graph_store_agrees_with_direct_access() {
        let g = fixtures::fig1_graph();
        let store: &dyn GraphStore = &g;
        assert_eq!(store.num_vertices(), g.num_vertices());
        assert_eq!(store.num_edges(), g.num_edges());
        assert_eq!(store.attribute_counts(), g.attribute_counts());
        let mut buf = Vec::new();
        for v in g.vertices() {
            assert_eq!(store.degree(v), g.degree(v));
            assert_eq!(store.attribute(v), g.attribute(v));
            buf.clear();
            store.neighbors_into(v, &mut buf).unwrap();
            assert_eq!(buf.as_slice(), g.neighbors(v));
        }
        assert!(store.resident_bytes() > 0);
    }

    #[test]
    fn scan_visits_every_vertex_in_order_including_isolated() {
        let mut b = crate::builder::GraphBuilder::new(5);
        b.add_edge(0, 2);
        let g = b.build().unwrap();
        let mut seen: Vec<(VertexId, Vec<VertexId>)> = Vec::new();
        GraphStore::scan_adjacency(&g, &mut |v, nbrs| seen.push((v, nbrs.to_vec()))).unwrap();
        assert_eq!(seen.len(), 5);
        assert_eq!(seen[0], (0, vec![2]));
        assert_eq!(seen[1], (1, vec![]));
        assert_eq!(seen[2], (2, vec![0]));
        assert_eq!(seen[3], (3, vec![]));
        assert_eq!(seen[4], (4, vec![]));
    }
}
