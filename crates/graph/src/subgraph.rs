//! Induced subgraphs and edge-filtered subgraphs.
//!
//! Two operations are needed by the fair-clique pipeline:
//!
//! * **Vertex-induced subgraphs** with a compact re-labeling — used when the search
//!   descends into a connected component or a search instance `(R, C)` and wants to run
//!   colorings / decompositions on just those vertices.
//! * **Edge-filtered subgraphs** that keep the original vertex-id space — used by the
//!   colorful-support reductions, which delete edges but must keep vertex ids stable so
//!   that attribute arrays, colorings and later stages still line up.

use crate::graph::{AttributedGraph, EdgeId, VertexId};

/// A vertex-induced subgraph together with the mapping back to the parent graph.
#[derive(Debug, Clone)]
pub struct InducedSubgraph {
    /// The subgraph, with vertices re-labeled to `0..vertices.len()`.
    pub graph: AttributedGraph,
    /// `original[i]` is the parent-graph id of subgraph vertex `i`.
    pub original: Vec<VertexId>,
}

impl InducedSubgraph {
    /// Maps a subgraph vertex id back to the parent graph.
    #[inline]
    pub fn to_original(&self, v: VertexId) -> VertexId {
        self.original[v as usize]
    }

    /// Maps a set of subgraph vertex ids back to parent-graph ids.
    pub fn to_original_set(&self, vs: &[VertexId]) -> Vec<VertexId> {
        vs.iter().map(|&v| self.to_original(v)).collect()
    }
}

/// Builds the subgraph induced by `vertices` (need not be sorted; duplicates ignored).
pub fn induced_subgraph(g: &AttributedGraph, vertices: &[VertexId]) -> InducedSubgraph {
    let mut original: Vec<VertexId> = vertices.to_vec();
    original.sort_unstable();
    original.dedup();
    let mut new_id = vec![u32::MAX; g.num_vertices()];
    for (i, &v) in original.iter().enumerate() {
        new_id[v as usize] = i as u32;
    }
    let attributes = original.iter().map(|&v| g.attribute(v)).collect();
    let mut edges = Vec::new();
    for &v in &original {
        for &u in g.neighbors(v) {
            if u > v && new_id[u as usize] != u32::MAX {
                edges.push((new_id[v as usize], new_id[u as usize]));
            }
        }
    }
    edges.sort_unstable();
    InducedSubgraph {
        graph: AttributedGraph::from_parts(attributes, edges),
        original,
    }
}

/// Builds a subgraph over the *same* vertex-id space keeping only the edges for which
/// `alive[edge_id]` is true. Vertex count and attributes are unchanged; vertices that
/// lose all incident edges simply become isolated.
pub fn edge_filtered_subgraph(g: &AttributedGraph, alive: &[bool]) -> AttributedGraph {
    assert_eq!(
        alive.len(),
        g.num_edges(),
        "edge mask length must equal the number of edges"
    );
    let attributes = g.attributes().to_vec();
    let edges: Vec<(VertexId, VertexId)> = g
        .edge_list()
        .iter()
        .enumerate()
        .filter_map(|(e, &(u, v))| alive[e].then_some((u, v)))
        .collect();
    AttributedGraph::from_parts(attributes, edges)
}

/// Builds a subgraph over the same vertex-id space keeping only edges whose *both*
/// endpoints satisfy `keep_vertex`. This is how vertex-peeling reductions (colorful
/// k-cores) are materialized without re-labeling.
pub fn vertex_filtered_subgraph(g: &AttributedGraph, keep_vertex: &[bool]) -> AttributedGraph {
    assert_eq!(
        keep_vertex.len(),
        g.num_vertices(),
        "vertex mask length must equal the number of vertices"
    );
    let attributes = g.attributes().to_vec();
    let edges: Vec<(VertexId, VertexId)> = g
        .edge_list()
        .iter()
        .copied()
        .filter(|&(u, v)| keep_vertex[u as usize] && keep_vertex[v as usize])
        .collect();
    AttributedGraph::from_parts(attributes, edges)
}

/// Convenience: the ids of edges with both endpoints in the given vertex mask.
pub fn edges_within(g: &AttributedGraph, keep_vertex: &[bool]) -> Vec<EdgeId> {
    g.edge_list()
        .iter()
        .enumerate()
        .filter_map(|(e, &(u, v))| {
            (keep_vertex[u as usize] && keep_vertex[v as usize]).then_some(e as EdgeId)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Attribute;
    use crate::fixtures;

    #[test]
    fn induced_subgraph_of_clique_part() {
        let g = fixtures::fig1_graph();
        let sub = induced_subgraph(&g, &[6, 7, 9, 10]);
        assert_eq!(sub.graph.num_vertices(), 4);
        assert_eq!(sub.graph.num_edges(), 6); // K4
        assert_eq!(sub.to_original_set(&[0, 1, 2, 3]), vec![6, 7, 9, 10]);
        // Attributes carried over: v7, v8, v10 are b; v11 is a.
        assert_eq!(sub.graph.attribute(0), Attribute::B);
        assert_eq!(sub.graph.attribute(3), Attribute::A);
    }

    #[test]
    fn induced_subgraph_dedups_input() {
        let g = fixtures::path_graph(4);
        let sub = induced_subgraph(&g, &[2, 1, 1, 2, 3]);
        assert_eq!(sub.original, vec![1, 2, 3]);
        assert_eq!(sub.graph.num_edges(), 2);
    }

    #[test]
    fn edge_filtered_subgraph_keeps_vertex_space() {
        let g = fixtures::path_graph(4); // edges (0,1) (1,2) (2,3)
        let mut alive = vec![true; g.num_edges()];
        let drop = g.edge_id(1, 2).unwrap() as usize;
        alive[drop] = false;
        let h = edge_filtered_subgraph(&g, &alive);
        assert_eq!(h.num_vertices(), 4);
        assert_eq!(h.num_edges(), 2);
        assert!(h.has_edge(0, 1));
        assert!(!h.has_edge(1, 2));
        assert_eq!(h.attribute(3), g.attribute(3));
    }

    #[test]
    #[should_panic(expected = "edge mask length")]
    fn edge_filtered_subgraph_validates_mask_len() {
        let g = fixtures::path_graph(3);
        let _ = edge_filtered_subgraph(&g, &[true]);
    }

    #[test]
    fn vertex_filtered_subgraph_isolates_dropped_vertices() {
        let g = fixtures::fig1_graph();
        let mut keep = vec![false; g.num_vertices()];
        for v in [6usize, 7, 9, 10, 11, 12, 13, 14] {
            keep[v] = true;
        }
        let h = vertex_filtered_subgraph(&g, &keep);
        assert_eq!(h.num_vertices(), 15); // same id space
        assert_eq!(h.num_edges(), 28); // just the 8-clique
        assert_eq!(h.degree(0), 0); // v1 is isolated now
        assert_eq!(h.num_non_isolated_vertices(), 8);
    }

    #[test]
    fn edges_within_mask() {
        let g = fixtures::path_graph(4);
        let keep = vec![true, true, true, false];
        let ids = edges_within(&g, &keep);
        assert_eq!(ids.len(), 2);
        for e in ids {
            let (u, v) = g.edge_endpoints(e);
            assert!(keep[u as usize] && keep[v as usize]);
        }
    }
}
