//! Structural invariants of the [`AttributedGraph`] CSR representation.
//!
//! The search and reduction code in `rfc-core` leans on three properties of the
//! representation that are easy to silently break when touching the builder or
//! `from_parts`: adjacency slices are sorted (binary-search adjacency tests and
//! merge-based common-neighbor enumeration), `has_edge` is symmetric, and each
//! undirected edge's [`EdgeId`] is identical in both directions (flat per-edge
//! state in the truss-style peelings). These tests pin all three on a spread of
//! shapes: hand-built fixtures, cliques, paths, sparse builder output with
//! duplicate/self-loop inputs, and graphs with isolated vertices.

use rfc_graph::{fixtures, Attribute, AttributedGraph, EdgeId, GraphBuilder, VertexId};

/// Graphs covering the structural corners: dense, sparse, bridged, isolated
/// vertices, and the paper fixtures.
fn sample_graphs() -> Vec<(&'static str, AttributedGraph)> {
    let mut graphs = vec![
        ("fig1", fixtures::fig1_graph()),
        ("fig2", fixtures::fig2_graph()),
        ("balanced_clique_9", fixtures::balanced_clique(9)),
        (
            "two_cliques_bridge",
            fixtures::two_cliques_with_bridge(5, 4),
        ),
        ("path_7", fixtures::path_graph(7)),
        ("empty", GraphBuilder::new(0).build().unwrap()),
        ("isolated_only", GraphBuilder::new(4).build().unwrap()),
    ];
    // Builder input with duplicates, reversed duplicates and self-loops; the
    // CSR must come out canonical regardless.
    let mut b = GraphBuilder::new(6);
    b.set_attribute(0, Attribute::A);
    b.set_attribute(3, Attribute::B);
    b.add_edges([(0, 1), (1, 0), (0, 1), (2, 2), (4, 1), (1, 4), (5, 0)]);
    graphs.push(("messy_builder_input", b.build().unwrap()));
    graphs
}

#[test]
fn adjacency_slices_are_strictly_sorted() {
    for (name, g) in sample_graphs() {
        for v in g.vertices() {
            let nbrs = g.neighbors(v);
            assert!(
                nbrs.windows(2).all(|w| w[0] < w[1]),
                "{name}: neighbors({v}) = {nbrs:?} is not strictly sorted"
            );
            assert!(
                !nbrs.contains(&v),
                "{name}: neighbors({v}) contains a self-loop"
            );
            assert_eq!(
                nbrs.len(),
                g.degree(v),
                "{name}: degree({v}) disagrees with the adjacency slice"
            );
        }
    }
}

#[test]
fn has_edge_is_symmetric_and_matches_the_edge_list() {
    for (name, g) in sample_graphs() {
        let n = g.num_vertices() as VertexId;
        for u in 0..n {
            for v in 0..n {
                let forward = g.has_edge(u, v);
                let backward = g.has_edge(v, u);
                assert_eq!(forward, backward, "{name}: has_edge({u},{v}) asymmetric");
                let canonical = (u.min(v), u.max(v));
                let in_list = u != v && g.edge_list().binary_search(&canonical).is_ok();
                assert_eq!(
                    forward, in_list,
                    "{name}: has_edge({u},{v}) disagrees with edge_list"
                );
            }
            assert!(!g.has_edge(u, u), "{name}: self-adjacency reported for {u}");
        }
    }
}

#[test]
fn edge_ids_are_stable_and_aligned_between_both_directions() {
    for (name, g) in sample_graphs() {
        let m = g.num_edges();
        // Each undirected edge id appears exactly twice across the adjacency
        // structure — once from each endpoint.
        let mut appearances = vec![0usize; m];
        for v in g.vertices() {
            for (&nbr, &eid) in g.neighbors(v).iter().zip(g.neighbor_edge_ids(v)) {
                appearances[eid as usize] += 1;
                let (a, b) = g.edge_endpoints(eid);
                assert_eq!(
                    (a, b),
                    (v.min(nbr), v.max(nbr)),
                    "{name}: edge id {eid} at vertex {v} maps to wrong endpoints"
                );
            }
        }
        assert!(
            appearances.iter().all(|&c| c == 2),
            "{name}: some edge id does not appear exactly twice: {appearances:?}"
        );
        // `edge_id` agrees in both directions and round-trips with
        // `edge_endpoints` / `edge_list`.
        for (expected, &(u, v)) in g.edge_list().iter().enumerate() {
            let expected = expected as EdgeId;
            assert_eq!(
                g.edge_id(u, v),
                Some(expected),
                "{name}: edge_id({u},{v}) mismatch"
            );
            assert_eq!(
                g.edge_id(v, u),
                Some(expected),
                "{name}: edge_id({v},{u}) mismatch (direction asymmetry)"
            );
            assert_eq!(g.edge_endpoints(expected), (u, v), "{name}: round-trip");
        }
    }
}

#[test]
fn edge_list_is_canonical() {
    for (name, g) in sample_graphs() {
        let edges = g.edge_list();
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "{name}: edge list not strictly sorted (or has duplicates)"
        );
        assert!(
            edges.iter().all(|&(u, v)| u < v),
            "{name}: edge list not canonical (u < v)"
        );
        let degree_sum: usize = g.vertices().map(|v| g.degree(v)).sum();
        assert_eq!(degree_sum, 2 * g.num_edges(), "{name}: handshake lemma");
    }
}

#[test]
fn messy_builder_input_is_deduplicated() {
    let mut b = GraphBuilder::new(6);
    b.add_edges([(0, 1), (1, 0), (0, 1), (2, 2), (4, 1), (1, 4), (5, 0)]);
    let g = b.build().unwrap();
    // {0-1, 1-4, 0-5}: self-loop (2,2) dropped, duplicates collapsed.
    assert_eq!(g.num_edges(), 3);
    assert_eq!(g.edge_list(), [(0, 1), (0, 5), (1, 4)]);
    assert_eq!(g.degree(1), 2);
    assert_eq!(g.degree(2), 0);
    assert!(g.neighbors(2).is_empty());
}
