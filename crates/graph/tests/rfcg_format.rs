//! Integration coverage for the `.rfcg` binary CSR format.
//!
//! The unit tests in `disk.rs` pin the writer/spool contracts; these tests treat
//! the format as a black box across a spread of graph shapes: every fixture must
//! round-trip byte-deterministically through [`write_rfcg`] → [`DiskCsr`] →
//! [`DiskCsr::to_graph`] in both streaming and resident modes, the two open modes
//! must agree with the in-memory [`GraphStore`] view vertex by vertex, the header
//! must decode to the documented little-endian layout, and any structural damage
//! to the file — truncation at every section boundary, trailing garbage, magic /
//! version / length corruption — must surface as a clean [`RfcgError`] instead of
//! a bad graph.

use rfc_graph::disk::{write_rfcg, DiskCsr, RfcgError, RFCG_MAGIC, RFCG_VERSION};
use rfc_graph::store::GraphStore;
use rfc_graph::{fixtures, AttributedGraph, GraphBuilder, VertexId};

use std::path::PathBuf;

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("rfcg_format_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{}_{name}", std::process::id()))
}

/// Graph shapes covering the structural corners of the format.
fn sample_graphs() -> Vec<(&'static str, AttributedGraph)> {
    let mut graphs = vec![
        ("fig1", fixtures::fig1_graph()),
        ("fig2", fixtures::fig2_graph()),
        ("balanced_clique_9", fixtures::balanced_clique(9)),
        (
            "two_cliques_bridge",
            fixtures::two_cliques_with_bridge(5, 4),
        ),
        ("path_7", fixtures::path_graph(7)),
        ("empty", GraphBuilder::new(0).build().unwrap()),
        ("isolated_only", GraphBuilder::new(5).build().unwrap()),
    ];
    // Isolated vertices interleaved with real adjacency: ids 0, 3 and 6 have
    // edges, the rest are padding that the offsets array must still cover.
    let mut b = GraphBuilder::new(7);
    b.add_edges([(0, 3), (3, 6), (0, 6)]);
    graphs.push(("sparse_with_isolated", b.build().unwrap()));
    graphs
}

#[test]
fn every_sample_round_trips_in_both_modes() {
    for (name, g) in sample_graphs() {
        let path = temp_path(&format!("rt_{name}.rfcg"));
        let summary = write_rfcg(&g, &path).unwrap();
        assert_eq!(summary.num_vertices, g.num_vertices(), "{name}");
        assert_eq!(summary.num_edges, g.num_edges(), "{name}");
        assert_eq!(
            summary.file_bytes,
            std::fs::metadata(&path).unwrap().len(),
            "{name}"
        );

        for (mode, store) in [
            ("streaming", DiskCsr::open(&path).unwrap()),
            ("resident", DiskCsr::open_resident(&path).unwrap()),
        ] {
            assert_eq!(store.is_resident(), mode == "resident", "{name}/{mode}");
            let back = store.to_graph().unwrap();
            assert_eq!(back, g, "{name}/{mode}: round-trip changed the graph");
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn disk_store_matches_in_memory_store_view() {
    for (name, g) in sample_graphs() {
        let path = temp_path(&format!("view_{name}.rfcg"));
        write_rfcg(&g, &path).unwrap();
        for store in [
            DiskCsr::open(&path).unwrap(),
            DiskCsr::open_resident(&path).unwrap(),
        ] {
            assert_eq!(store.num_vertices(), g.num_vertices(), "{name}");
            assert_eq!(store.num_edges(), g.num_edges(), "{name}");
            assert_eq!(store.attribute_counts(), g.attribute_counts(), "{name}");
            let mut buf: Vec<VertexId> = Vec::new();
            for v in g.vertices() {
                assert_eq!(store.attribute(v), g.attribute(v), "{name}: attr({v})");
                assert_eq!(store.degree(v), g.degree(v), "{name}: degree({v})");
                buf.clear(); // neighbors_into appends by contract
                store.neighbors_into(v, &mut buf).unwrap();
                assert_eq!(buf.as_slice(), g.neighbors(v), "{name}: neighbors({v})");
            }
            // The sequential scan visits every vertex exactly once, in order,
            // including isolated ones, with the same slices as random access.
            let mut visited: Vec<(VertexId, Vec<VertexId>)> = Vec::new();
            store
                .scan_adjacency(&mut |v, nbrs| visited.push((v, nbrs.to_vec())))
                .unwrap();
            assert_eq!(visited.len(), g.num_vertices(), "{name}: scan coverage");
            for (v, nbrs) in &visited {
                assert_eq!(nbrs.as_slice(), g.neighbors(*v), "{name}: scan({v})");
            }
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn writes_are_deterministic_and_header_is_little_endian() {
    let g = fixtures::fig1_graph();
    let p1 = temp_path("det1.rfcg");
    let p2 = temp_path("det2.rfcg");
    write_rfcg(&g, &p1).unwrap();
    write_rfcg(&g, &p2).unwrap();
    let bytes = std::fs::read(&p1).unwrap();
    assert_eq!(
        bytes,
        std::fs::read(&p2).unwrap(),
        "writes are deterministic"
    );

    // Documented layout: magic, version u32, n u64, m u64 — all little-endian.
    assert_eq!(&bytes[0..4], &RFCG_MAGIC);
    assert_eq!(
        u32::from_le_bytes(bytes[4..8].try_into().unwrap()),
        RFCG_VERSION
    );
    let n = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let m = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    assert_eq!(n, g.num_vertices() as u64);
    assert_eq!(m, g.num_edges() as u64);
    assert_eq!(bytes.len() as u64, 24 + (n + 1) * 8 + 2 * m * 4 + n);
    std::fs::remove_file(&p1).ok();
    std::fs::remove_file(&p2).ok();
}

#[test]
fn truncation_at_every_section_boundary_is_rejected() {
    let g = fixtures::fig1_graph();
    let path = temp_path("trunc_src.rfcg");
    write_rfcg(&g, &path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let n = g.num_vertices() as u64;
    let m = g.num_edges() as u64;
    let header_end = 24u64;
    let offsets_end = header_end + (n + 1) * 8;
    let neighbors_end = offsets_end + 2 * m * 4;
    // Mid-header, each section boundary, one byte short, and one byte long.
    let cuts = [
        0,
        10,
        header_end,
        offsets_end,
        neighbors_end,
        bytes.len() as u64 - 1,
    ];
    for cut in cuts {
        let p = temp_path(&format!("trunc_{cut}.rfcg"));
        std::fs::write(&p, &bytes[..cut as usize]).unwrap();
        let err = DiskCsr::open(&p).unwrap_err();
        assert!(
            matches!(err, RfcgError::Format(_)),
            "cut at {cut}: expected a format error, got {err}"
        );
        std::fs::remove_file(&p).ok();
    }
    // Trailing garbage changes the expected length and must also be rejected.
    let p = temp_path("trailing.rfcg");
    let mut padded = bytes.clone();
    padded.push(0);
    std::fs::write(&p, &padded).unwrap();
    assert!(matches!(DiskCsr::open(&p), Err(RfcgError::Format(_))));
    std::fs::remove_file(&p).ok();
}

#[test]
fn corrupt_magic_version_and_counts_are_rejected() {
    let g = fixtures::balanced_clique(6);
    let path = temp_path("corrupt_src.rfcg");
    write_rfcg(&g, &path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();

    type Corruption = fn(&mut Vec<u8>);
    let corruptions: [(&str, Corruption); 4] = [
        ("magic", |b| b[0] = b'X'),
        ("version", |b| b[4] = 99),
        // Flipping n desynchronizes the declared and actual section sizes.
        ("vertex count", |b| b[8] ^= 1),
        // Flipping m does the same for the neighbor section.
        ("edge count", |b| b[16] ^= 1),
    ];
    for (what, corrupt) in corruptions {
        let p = temp_path(&format!("corrupt_{}.rfcg", what.replace(' ', "_")));
        let mut damaged = bytes.clone();
        corrupt(&mut damaged);
        std::fs::write(&p, &damaged).unwrap();
        let err = DiskCsr::open(&p).unwrap_err();
        assert!(
            matches!(err, RfcgError::Format(_)),
            "{what}: expected a format error, got {err}"
        );
        std::fs::remove_file(&p).ok();
    }
}

#[test]
fn empty_and_isolated_graphs_have_minimal_files() {
    let empty = GraphBuilder::new(0).build().unwrap();
    let p = temp_path("empty.rfcg");
    let summary = write_rfcg(&empty, &p).unwrap();
    // Header + one offset entry + zero neighbors + zero attributes.
    assert_eq!(summary.file_bytes, 24 + 8);
    let store = DiskCsr::open(&p).unwrap();
    assert_eq!(store.num_vertices(), 0);
    assert_eq!(store.num_edges(), 0);
    assert_eq!(store.to_graph().unwrap(), empty);
    std::fs::remove_file(&p).ok();

    let isolated = GraphBuilder::new(3).build().unwrap();
    let p = temp_path("isolated.rfcg");
    let summary = write_rfcg(&isolated, &p).unwrap();
    assert_eq!(summary.file_bytes, 24 + 4 * 8 + 3);
    let store = DiskCsr::open_resident(&p).unwrap();
    assert_eq!(store.to_graph().unwrap(), isolated);
    for v in 0..3 {
        assert_eq!(store.degree(v), 0);
    }
    std::fs::remove_file(&p).ok();
}
