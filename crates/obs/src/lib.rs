//! Std-only observability for the fair-clique stack: a hierarchical span tracer
//! and a lock-free metrics registry.
//!
//! The container has no crates registry, so this crate deliberately rebuilds the
//! two observability primitives every production service needs on `std` alone —
//! no tokio, no `tracing`, no prometheus client:
//!
//! * [`trace`] — a **hierarchical span tracer**. Code brackets a unit of work in a
//!   [`trace::span`] guard; open/close events (name, parent, monotonic timestamp,
//!   duration, attached counters) stream as JSONL lines to a pluggable
//!   [`trace::TraceSink`]. Tracing is process-global and off by default: the
//!   disabled fast path is a single relaxed atomic load and **allocates
//!   nothing**, so instrumentation stays compiled into release builds (the
//!   overhead budget is a handful of nanoseconds per span site — see
//!   `tests/overhead.rs`).
//! * [`metrics`] — a **metrics registry** of named counters, gauges and
//!   log-spaced fixed-bucket latency [histograms](metrics::Histogram), all built
//!   on `AtomicU64` cells so recording never takes a lock. The registry renders a
//!   Prometheus-style text [exposition](metrics::Registry::render); the
//!   `rfc-serve` daemon serves it through the `metrics` protocol request.
//!
//! Every layer of the stack records into the global registry and opens spans
//! around its phases: reduction stages, the per-component branch-and-bound
//! (branches, prune reasons, incumbent updates), the work-stealing pool (steals,
//! parks, queue depths), the dynamic layer's caches (hits, evictions, splice
//! decisions), the scale tier (peel rounds, disk bytes) and per-request daemon
//! latency. The CLI surfaces the tracer via `--trace FILE` on
//! `solve`/`enumerate`/`update`; `Solution::trace_summary()` renders the same
//! phase breakdown without a trace file. See the repository README's
//! "Observability" section for the JSONL schema and the metric name inventory.

pub mod metrics;
pub mod trace;
