//! Lock-free metrics registry with Prometheus-style text exposition.
//!
//! A [`Registry`] maps metric names to [`Counter`]s, [`Gauge`]s and log-spaced
//! latency [`Histogram`]s. Handles are `Arc`s over atomic cells: registration
//! takes a lock once, recording never does. Names may embed Prometheus-style
//! labels — `rfc_request_latency_us{op="solve"}` — and [`Registry::render`]
//! groups series of the same family under one `# TYPE` header, splicing the
//! `le` bucket label into histogram series.
//!
//! The process-wide registry lives behind [`global`]; instrumented layers
//! record into it unconditionally (a counter bump is one relaxed atomic add)
//! and consumers — the daemon's `metrics` request, tests — render it on
//! demand.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if it is currently lower (high-water marks).
    #[inline]
    pub fn fetch_max(&self, v: i64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Bucket boundaries grow by `2^(1/3)` per bucket: three buckets per octave,
/// so any recorded value is within ~26% of its bucket's upper bound.
const BUCKET_RATIO_LOG2: f64 = 1.0 / 3.0;
/// 96 buckets cover 1 µs .. ~2^32 µs (≈ 71 minutes) — ample for latencies.
const NUM_BUCKETS: usize = 96;

fn bucket_bounds() -> &'static [u64; NUM_BUCKETS] {
    static BOUNDS: OnceLock<[u64; NUM_BUCKETS]> = OnceLock::new();
    BOUNDS.get_or_init(|| {
        let mut bounds = [0u64; NUM_BUCKETS];
        let mut prev = 0u64;
        for (i, slot) in bounds.iter_mut().enumerate() {
            let raw = (2f64.powf(i as f64 * BUCKET_RATIO_LOG2)).round() as u64;
            // Strictly increasing even where rounding collides at the low end.
            prev = raw.max(prev + 1);
            *slot = prev;
        }
        bounds
    })
}

/// A fixed-bucket log-spaced histogram on lock-free `AtomicU64` cells.
///
/// Designed for microsecond latencies but unit-agnostic: buckets are
/// log-spaced (ratio `2^(1/3)`) from 1 to ~2^32, values beyond the last bound
/// land in a catch-all overflow bucket. [`observe`](Self::observe) is a binary
/// search plus three relaxed atomic updates; [`quantile`](Self::quantile)
/// interpolates within the selected bucket and clamps to the exact observed
/// min/max so p0/p100 are always truthful.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS + 1],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn bucket_index(value: u64) -> usize {
        bucket_bounds().partition_point(|&bound| bound < value)
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest observed value (0 when empty).
    pub fn min(&self) -> u64 {
        let v = self.min.load(Ordering::Relaxed);
        if v == u64::MAX {
            0
        } else {
            v
        }
    }

    /// Largest observed value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Arithmetic mean of observed values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() as f64 / count as f64
        }
    }

    /// Estimates the `p`-quantile (`p` in `0.0..=1.0`) by linear interpolation
    /// inside the selected bucket, clamped to the observed min/max. Returns 0
    /// when empty.
    pub fn quantile(&self, p: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based, matching the convention of
        // a sorted array lookup at index ceil(p * n).
        let rank = ((p * count as f64).ceil() as u64).clamp(1, count);
        let bounds = bucket_bounds();
        let mut seen = 0u64;
        for (i, cell) in self.buckets.iter().enumerate() {
            let in_bucket = cell.load(Ordering::Relaxed);
            if in_bucket == 0 {
                continue;
            }
            if seen + in_bucket >= rank {
                let lower = if i == 0 { 0 } else { bounds[i - 1] };
                let upper = if i < NUM_BUCKETS {
                    bounds[i]
                } else {
                    self.max()
                };
                let within = (rank - seen) as f64 / in_bucket as f64;
                let est = lower as f64 + within * (upper.saturating_sub(lower)) as f64;
                return (est.round() as u64).clamp(self.min(), self.max());
            }
            seen += in_bucket;
        }
        self.max()
    }

    /// Yields `(upper_bound, cumulative_count)` for every non-trivial bucket
    /// plus the `+Inf` bucket — the Prometheus cumulative bucket series.
    pub fn cumulative_buckets(&self) -> Vec<(Option<u64>, u64)> {
        let bounds = bucket_bounds();
        let mut out = Vec::new();
        let mut cumulative = 0u64;
        for (i, cell) in self.buckets.iter().enumerate() {
            let in_bucket = cell.load(Ordering::Relaxed);
            if in_bucket == 0 {
                continue;
            }
            cumulative += in_bucket;
            out.push((bounds.get(i).copied(), cumulative));
        }
        // The +Inf bucket always closes the series.
        #[allow(clippy::unnecessary_map_or)] // is_none_or needs Rust 1.82; MSRV is 1.75
        if out.last().map_or(true, |(bound, _)| bound.is_some()) {
            out.push((None, cumulative));
        }
        out
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of metrics, rendered as Prometheus-style text.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Metric>> {
        self.metrics.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns the counter registered under `name`, creating it on first use.
    /// `name` may embed labels: `rfc_requests_total{op="solve"}`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut metrics = self.lock();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Returns the gauge registered under `name`, creating it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut metrics = self.lock();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Returns the histogram registered under `name`, creating it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut metrics = self.lock();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Renders every registered metric as Prometheus-style exposition text.
    ///
    /// Series of the same family (name up to the label block) share one
    /// `# TYPE` header; histogram series expand into `_bucket{le=...}`,
    /// `_sum` and `_count` lines.
    pub fn render(&self) -> String {
        let metrics = self.lock();
        let mut out = String::new();
        let mut last_family = String::new();
        for (name, metric) in metrics.iter() {
            let (family, labels) = split_labels(name);
            let kind = match metric {
                Metric::Counter(_) => "counter",
                Metric::Gauge(_) => "gauge",
                Metric::Histogram(_) => "histogram",
            };
            if family != last_family {
                let _ = writeln!(out, "# TYPE {family} {kind}");
                last_family = family.to_string();
            }
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{name} {}", g.get());
                }
                Metric::Histogram(h) => {
                    for (bound, cumulative) in h.cumulative_buckets() {
                        let le = match bound {
                            Some(b) => b.to_string(),
                            None => "+Inf".to_string(),
                        };
                        let _ = writeln!(
                            out,
                            "{} {cumulative}",
                            with_label(family, labels, "le", &le)
                        );
                    }
                    let _ = writeln!(out, "{} {}", suffixed(family, labels, "_sum"), h.sum());
                    let _ = writeln!(out, "{} {}", suffixed(family, labels, "_count"), h.count());
                }
            }
        }
        out
    }
}

/// Splits `rfc_latency_us{op="solve"}` into (`rfc_latency_us`, `op="solve"`).
fn split_labels(name: &str) -> (&str, &str) {
    match name.split_once('{') {
        Some((family, rest)) => (family, rest.trim_end_matches('}')),
        None => (name, ""),
    }
}

/// Builds `family_bucket{<labels>,key="value"}`.
fn with_label(family: &str, labels: &str, key: &str, value: &str) -> String {
    if labels.is_empty() {
        format!("{family}_bucket{{{key}=\"{value}\"}}")
    } else {
        format!("{family}_bucket{{{labels},{key}=\"{value}\"}}")
    }
}

/// Builds `family_sum{<labels>}` (labels omitted when empty).
fn suffixed(family: &str, labels: &str, suffix: &str) -> String {
    if labels.is_empty() {
        format!("{family}{suffix}")
    } else {
        format!("{family}{suffix}{{{labels}}}")
    }
}

/// The process-wide registry every instrumented layer records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_strictly_increasing() {
        let bounds = bucket_bounds();
        assert_eq!(bounds[0], 1);
        for pair in bounds.windows(2) {
            assert!(pair[0] < pair[1], "{pair:?}");
        }
        // Three buckets per octave: every third bound doubles (±rounding).
        assert!(bounds[NUM_BUCKETS - 1] > u32::MAX as u64 / 2);
    }

    #[test]
    fn counter_and_gauge_record() {
        let reg = Registry::new();
        let c = reg.counter("hits_total");
        c.inc();
        c.add(4);
        assert_eq!(reg.counter("hits_total").get(), 5);
        let g = reg.gauge("depth");
        g.set(7);
        g.add(-2);
        g.fetch_max(3);
        assert_eq!(reg.gauge("depth").get(), 5);
    }

    #[test]
    fn histogram_quantiles_interpolate_and_clamp() {
        let h = Histogram::new();
        for v in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
            h.observe(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.sum(), 550);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 55.0).abs() < 1e-9);
        assert_eq!(h.quantile(0.0), 10);
        assert_eq!(h.quantile(1.0), 100);
        let p50 = h.quantile(0.5);
        assert!((40..=64).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile(0.99);
        assert!((81..=100).contains(&p99), "p99 = {p99}");
    }

    #[test]
    fn histogram_quantile_accuracy_is_bucket_bounded() {
        // Log-spaced buckets with ratio 2^(1/3) bound relative error ~26%.
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.observe(v);
        }
        for (p, exact) in [(0.5, 5_000u64), (0.9, 9_000), (0.99, 9_900)] {
            let est = h.quantile(p) as f64;
            let rel = (est - exact as f64).abs() / exact as f64;
            assert!(rel < 0.27, "p{p}: est {est} vs exact {exact} (rel {rel})");
        }
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        // Exposition still emits a +Inf bucket for an empty histogram.
        assert_eq!(h.cumulative_buckets(), vec![(None, 0)]);
    }

    #[test]
    fn render_groups_families_and_splices_le() {
        let reg = Registry::new();
        reg.counter("rfc_requests_total{op=\"solve\"}").add(3);
        reg.counter("rfc_requests_total{op=\"stats\"}").add(1);
        reg.gauge("rfc_pool_depth").set(2);
        reg.histogram("rfc_latency_us{op=\"solve\"}").observe(100);
        let text = reg.render();
        // One TYPE header per family, not per series.
        assert_eq!(text.matches("# TYPE rfc_requests_total counter").count(), 1);
        assert!(text.contains("rfc_requests_total{op=\"solve\"} 3"));
        assert!(text.contains("rfc_requests_total{op=\"stats\"} 1"));
        assert!(text.contains("# TYPE rfc_pool_depth gauge"));
        assert!(text.contains("rfc_pool_depth 2"));
        assert!(text.contains("# TYPE rfc_latency_us histogram"));
        // The le label splices after the existing label set.
        assert!(
            text.contains("rfc_latency_us_bucket{op=\"solve\",le=\"+Inf\"} 1"),
            "{text}"
        );
        assert!(text.contains("rfc_latency_us_sum{op=\"solve\"} 100"));
        assert!(text.contains("rfc_latency_us_count{op=\"solve\"} 1"));
    }

    #[test]
    fn unlabeled_histogram_renders() {
        let reg = Registry::new();
        reg.histogram("plain_us").observe(5);
        let text = reg.render();
        assert!(text.contains("plain_us_bucket{le="));
        assert!(text.contains("plain_us_sum 5"));
        assert!(text.contains("plain_us_count 1"));
    }

    #[test]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("x");
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| reg.gauge("x")));
        assert!(err.is_err());
    }

    #[test]
    fn global_registry_is_shared() {
        let c = global().counter("rfc_obs_selftest_total");
        let before = c.get();
        global().counter("rfc_obs_selftest_total").inc();
        assert_eq!(c.get(), before + 1);
    }
}
