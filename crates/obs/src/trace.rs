//! Hierarchical span tracing with a JSONL sink.
//!
//! A *span* brackets one unit of work: [`span("name")`](span) opens it, dropping
//! the returned guard closes it. Spans nest through a thread-local stack — a span
//! opened while another is live on the same thread records that span as its
//! parent — and each open/close pair becomes one JSON line in the installed
//! [`TraceSink`]:
//!
//! ```json
//! {"ev":"open","id":7,"parent":3,"thread":1,"name":"search","t_us":1523}
//! {"ev":"close","id":7,"parent":3,"thread":1,"name":"search","t_us":9810,"dur_us":8287,"counters":{"branches":4211}}
//! ```
//!
//! * `id` is unique per process run; `parent` is `null` for root spans.
//! * `thread` is a small per-process thread ordinal (not the OS tid).
//! * `t_us` is microseconds since the process's trace epoch, from a monotonic
//!   clock; `dur_us` is the span's wall-clock duration.
//! * `counters` carries values attached with [`Span::counter`] (omitted when
//!   empty). Repeated names accumulate.
//!
//! Tracing is process-global and **off by default**. [`install`] switches it on
//! and returns a guard; dropping the guard switches it off and flushes the sink.
//! While disabled, [`span`] is a single relaxed atomic load returning an inert
//! guard — no allocation, no lock, no timestamp (the instrumentation is cheap
//! enough to stay compiled into release builds; `tests/overhead.rs` pins the
//! no-allocation property). Installs are serialized: a second [`install`] blocks
//! until the first guard drops, which is also what keeps concurrent tests from
//! interleaving their sinks.

use std::cell::{Cell, RefCell};
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// Where trace lines go. One call per event line (no trailing newline in
/// `line`); [`flush`](TraceSink::flush) is called when the tracer is
/// uninstalled.
pub trait TraceSink: Send {
    /// Writes one JSONL event line.
    fn line(&mut self, line: &str);
    /// Flushes buffered lines (uninstall calls this).
    fn flush(&mut self) {}
}

/// A [`TraceSink`] writing buffered lines to a file.
pub struct FileSink {
    writer: BufWriter<File>,
}

impl FileSink {
    /// Creates (or truncates) `path` as the trace output file.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        Ok(Self {
            writer: BufWriter::new(File::create(path)?),
        })
    }
}

impl TraceSink for FileSink {
    fn line(&mut self, line: &str) {
        // A failed trace write must never take the traced program down.
        let _ = writeln!(self.writer, "{line}");
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

/// A [`TraceSink`] collecting lines into a shared vector (tests and
/// [`Solution::trace_summary`](../../rfc_core/solver/struct.Solution.html)-style
/// in-process consumers).
pub struct BufferSink {
    lines: Arc<Mutex<Vec<String>>>,
}

impl BufferSink {
    /// Returns the sink plus the shared buffer its lines land in.
    #[allow(clippy::type_complexity)]
    pub fn new() -> (Self, Arc<Mutex<Vec<String>>>) {
        let lines = Arc::new(Mutex::new(Vec::new()));
        (
            Self {
                lines: Arc::clone(&lines),
            },
            lines,
        )
    }
}

impl TraceSink for BufferSink {
    fn line(&mut self, line: &str) {
        self.lines
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(line.to_string());
    }
}

/// Global on/off switch — the only thing the disabled fast path reads.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Process-unique span ids (0 is never issued, so it can mean "no parent").
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
/// Small per-process thread ordinals for the `thread` field.
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);
/// The installed sink. Locked only while tracing is enabled.
static SINK: Mutex<Option<Box<dyn TraceSink>>> = Mutex::new(None);
/// Serializes installs: one tracer at a time, process-wide.
static INSTALL: Mutex<()> = Mutex::new(());

thread_local! {
    /// Ids of the spans currently open on this thread, innermost last.
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// This thread's ordinal (0 = not yet assigned).
    static THREAD_ORDINAL: Cell<u64> = const { Cell::new(0) };
}

/// The monotonic zero point of every `t_us` timestamp, fixed at first use.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn thread_ordinal() -> u64 {
    THREAD_ORDINAL.with(|cell| {
        let mut id = cell.get();
        if id == 0 {
            id = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
            cell.set(id);
        }
        id
    })
}

fn emit(line: &str) {
    if let Some(sink) = SINK.lock().unwrap_or_else(PoisonError::into_inner).as_mut() {
        sink.line(line);
    }
}

/// Keeps tracing enabled; dropping it disables tracing and flushes the sink.
///
/// Holds the process-wide install lock, so it is deliberately `!Send`: the
/// scope that turns tracing on is the scope that turns it off.
pub struct TraceGuard {
    _install: MutexGuard<'static, ()>,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::SeqCst);
        if let Some(mut sink) = SINK.lock().unwrap_or_else(PoisonError::into_inner).take() {
            sink.flush();
        }
    }
}

/// Installs `sink` and enables tracing until the returned guard drops.
///
/// Blocks if another tracer is currently installed (installs are serialized
/// process-wide). Spans already open keep their structure; their close events go
/// to whichever sink is installed when they drop.
pub fn install(sink: Box<dyn TraceSink>) -> TraceGuard {
    let install = INSTALL.lock().unwrap_or_else(PoisonError::into_inner);
    epoch(); // pin the timestamp zero before the first event
    *SINK.lock().unwrap_or_else(PoisonError::into_inner) = Some(sink);
    ENABLED.store(true, Ordering::SeqCst);
    TraceGuard { _install: install }
}

/// Whether tracing is currently enabled (one relaxed load).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The live half of a [`Span`] (only built while tracing is enabled).
struct OpenSpan {
    id: u64,
    parent: u64,
    thread: u64,
    name: &'static str,
    start: Instant,
    counters: Vec<(&'static str, u64)>,
}

/// A span guard: created by [`span`], closed (and emitted) on drop.
///
/// While tracing is disabled this is an inert zero-allocation shell; every
/// method is a no-op.
#[must_use = "a span measures the scope it is alive in"]
pub struct Span {
    inner: Option<OpenSpan>,
}

impl Span {
    /// Attaches (or accumulates into) a named counter, emitted with the close
    /// event. No-op while tracing is disabled.
    #[inline]
    pub fn counter(&mut self, name: &'static str, value: u64) {
        if let Some(open) = &mut self.inner {
            if let Some(entry) = open.counters.iter_mut().find(|(n, _)| *n == name) {
                entry.1 += value;
            } else {
                open.counters.push((name, value));
            }
        }
    }

    /// Whether this guard is actually recording (tracing was enabled when it
    /// was opened).
    #[inline]
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }
}

/// Opens a span named `name` under the innermost span open on this thread.
///
/// The hot path when tracing is disabled is one relaxed atomic load and a
/// `None` — no allocation, no clock read, no lock.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { inner: None };
    }
    Span {
        inner: Some(open_span(name)),
    }
}

#[cold]
fn open_span(name: &'static str) -> OpenSpan {
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let thread = thread_ordinal();
    let parent = STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let parent = stack.last().copied().unwrap_or(0);
        stack.push(id);
        parent
    });
    let start = Instant::now();
    let t_us = start.duration_since(epoch()).as_micros() as u64;
    let mut line = String::with_capacity(96);
    let _ = write!(line, "{{\"ev\":\"open\",\"id\":{id},\"parent\":");
    if parent == 0 {
        line.push_str("null");
    } else {
        let _ = write!(line, "{parent}");
    }
    let _ = write!(
        line,
        ",\"thread\":{thread},\"name\":\"{}\",\"t_us\":{t_us}}}",
        escaped(name)
    );
    emit(&line);
    OpenSpan {
        id,
        parent,
        thread,
        name,
        start,
        counters: Vec::new(),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(open) = self.inner.take() else {
            return;
        };
        // Unwind this thread's stack to (and including) this span. Guards drop
        // in LIFO order in ordinary code, so this pops exactly one entry; if an
        // outer guard is dropped before an inner one, the inner ids are
        // discarded so the stack cannot leak a stale parent.
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(at) = stack.iter().rposition(|&id| id == open.id) {
                stack.truncate(at);
            }
        });
        let end = Instant::now();
        let t_us = end.duration_since(epoch()).as_micros() as u64;
        let dur_us = end.duration_since(open.start).as_micros() as u64;
        let mut line = String::with_capacity(128);
        let _ = write!(line, "{{\"ev\":\"close\",\"id\":{},\"parent\":", open.id);
        if open.parent == 0 {
            line.push_str("null");
        } else {
            let _ = write!(line, "{}", open.parent);
        }
        let _ = write!(
            line,
            ",\"thread\":{},\"name\":\"{}\",\"t_us\":{t_us},\"dur_us\":{dur_us}",
            open.thread,
            escaped(open.name)
        );
        if !open.counters.is_empty() {
            line.push_str(",\"counters\":{");
            for (i, (name, value)) in open.counters.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                let _ = write!(line, "\"{}\":{value}", escaped(name));
            }
            line.push('}');
        }
        line.push('}');
        emit(&line);
    }
}

/// Minimal JSON string escaping for span/counter names (which are `'static`
/// identifiers, but a stray quote must not corrupt the stream).
fn escaped(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_emit_balanced_events() {
        let (sink, lines) = BufferSink::new();
        let guard = install(Box::new(sink));
        {
            let mut outer = span("outer");
            outer.counter("work", 2);
            outer.counter("work", 3);
            assert!(outer.is_recording());
            {
                let _inner = span("inner");
            }
        }
        drop(guard);
        let lines = lines.lock().unwrap();
        assert_eq!(lines.len(), 4, "{lines:?}");
        assert!(lines[0].contains("\"ev\":\"open\"") && lines[0].contains("\"name\":\"outer\""));
        assert!(lines[0].contains("\"parent\":null"));
        assert!(lines[1].contains("\"name\":\"inner\""));
        assert!(!lines[1].contains("\"parent\":null"), "inner has a parent");
        // Inner closes before outer; repeated counters accumulate.
        assert!(lines[2].contains("\"ev\":\"close\"") && lines[2].contains("\"name\":\"inner\""));
        assert!(lines[3].contains("\"name\":\"outer\"") && lines[3].contains("\"work\":5"));
    }

    #[test]
    fn disabled_spans_are_inert() {
        // No tracer installed: guards are inert shells.
        let mut s = span("nobody-listens");
        assert!(!s.is_recording());
        s.counter("ignored", 1);
        drop(s);
    }

    #[test]
    fn parent_links_survive_sibling_spans() {
        let (sink, lines) = BufferSink::new();
        let guard = install(Box::new(sink));
        {
            let _root = span("root");
            let a = span("a");
            drop(a);
            let b = span("b");
            drop(b);
        }
        drop(guard);
        let lines = lines.lock().unwrap();
        // a and b must share root's id as parent.
        let root_open = lines
            .iter()
            .find(|l| l.contains("\"name\":\"root\"") && l.contains("open"))
            .unwrap();
        let root_id: u64 = root_open
            .split("\"id\":")
            .nth(1)
            .unwrap()
            .split(',')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        for name in ["\"name\":\"a\"", "\"name\":\"b\""] {
            let open = lines
                .iter()
                .find(|l| l.contains(name) && l.contains("open"))
                .unwrap();
            assert!(
                open.contains(&format!("\"parent\":{root_id}")),
                "{open} should have parent {root_id}"
            );
        }
    }

    #[test]
    fn names_are_escaped() {
        assert_eq!(escaped("plain"), "plain");
        assert_eq!(escaped("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escaped("x\ny"), "x\\u000ay");
    }

    #[test]
    fn file_sink_writes_lines() {
        let dir = std::env::temp_dir().join("rfc_obs_trace_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jsonl");
        {
            let mut sink = FileSink::create(&path).unwrap();
            sink.line("{\"ev\":\"open\"}");
            sink.flush();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"ev\":\"open\"}\n");
        std::fs::remove_file(&path).ok();
    }
}
