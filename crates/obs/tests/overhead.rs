//! Pins the disabled-tracer fast path: opening and dropping spans while no
//! tracer is installed must allocate nothing. This is what makes it safe to
//! leave instrumentation compiled into release builds.
//!
//! Lives in its own integration-test binary so the `#[global_allocator]`
//! swap cannot perturb other tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn disabled_spans_do_not_allocate() {
    // Warm up thread-locals and lazy statics outside the measured window.
    {
        let mut s = rfc_obs::trace::span("warmup");
        s.counter("w", 1);
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..10_000 {
        let mut s = rfc_obs::trace::span("hot");
        s.counter("work", 1);
        s.counter("more", 2);
        drop(s);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "disabled span path allocated {} times across 10k spans",
        after - before
    );
    assert!(!rfc_obs::trace::enabled());
}

#[test]
fn disabled_metrics_handles_do_not_allocate_on_record() {
    // Registration allocates (once); recording through the handle must not.
    let counter = rfc_obs::metrics::global().counter("overhead_test_total");
    let histogram = rfc_obs::metrics::global().histogram("overhead_test_us");

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..10_000u64 {
        counter.inc();
        histogram.observe(i % 512);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "metric recording allocated {} times across 10k updates",
        after - before
    );
}
