//! The in-process engine: a registry of named graphs, each behind a
//! `Mutex<DynamicRfcSolver>`, serving parsed [`Request`]s.
//!
//! This is the single implementation of request semantics — the TCP daemon uses it
//! directly in in-process mode, each `maxfairclique worker` child wraps one over
//! stdin/stdout, and the multi-process executor merges the answers of N of them.
//!
//! Sharing model: one mutex per *graph*, so queries against different graphs run
//! concurrently while queries against the same graph serialize — which is exactly
//! what makes the [`DynamicRfcSolver`]'s per-component result caches a cross-client
//! shared query cache (client A's solve warms client B's, and an `update` from one
//! client invalidates precisely what every other client observes).

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

use rfc_core::enumerate::LimitSink;
use rfc_core::portfolio::PortfolioConfig;
use rfc_core::solver::RfcSolver;
use rfc_core::{CancelToken, CliqueSink, DynamicRfcSolver, FairClique, Shard, SinkFlow};
use rfc_graph::io::read_graph_from_path;
use rfc_graph::json::JsonValue;
use rfc_graph::UpdateOp;

use crate::protocol::{
    clique_stream_line, enumerate_response, solve_response, EnumSpec, ErrorCode, ErrorResponse,
    QuerySpec, Request,
};
use crate::{Counters, Flow, Handler};

/// Tuning knobs of a [`LocalEngine`].
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    /// Per-`(k, reduction-config)` LRU capacity of the dynamic solver's
    /// per-component result caches (`None` = unbounded, `Some(0)` = cache nothing).
    pub cache_capacity: Option<usize>,
    /// Wall-clock budget applied to solve/enumerate requests that set no
    /// `time_limit_ms` of their own (`None` = unlimited by default).
    pub default_time_limit: Option<Duration>,
}

/// One registered graph: the dynamic solver behind its own lock.
struct GraphSlot {
    solver: Mutex<DynamicRfcSolver>,
}

/// The in-process request handler: named-graph registry + request dispatch.
pub struct LocalEngine {
    config: EngineConfig,
    graphs: RwLock<HashMap<String, Arc<GraphSlot>>>,
    shutting_down: AtomicBool,
    inflight: Mutex<HashMap<u64, CancelToken>>,
    next_query_id: AtomicU64,
    counters: Arc<Counters>,
}

impl LocalEngine {
    /// Creates an empty engine sharing the given daemon counters.
    pub fn new(config: EngineConfig, counters: Arc<Counters>) -> Self {
        Self {
            config,
            graphs: RwLock::new(HashMap::new()),
            shutting_down: AtomicBool::new(false),
            inflight: Mutex::new(HashMap::new()),
            next_query_id: AtomicU64::new(0),
            counters,
        }
    }

    /// Whether a `shutdown` request has been handled.
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::Relaxed)
    }

    /// Cancels every in-flight query (each returns its verified best-so-far).
    pub fn cancel_inflight(&self) {
        let inflight = self.inflight.lock().expect("inflight lock poisoned");
        for token in inflight.values() {
            token.cancel();
        }
    }

    fn slot(&self, graph: &str) -> Result<Arc<GraphSlot>, ErrorResponse> {
        self.graphs
            .read()
            .expect("registry lock poisoned")
            .get(graph)
            .cloned()
            .ok_or_else(|| {
                ErrorResponse::new(
                    ErrorCode::UnknownGraph,
                    format!("no graph named `{graph}` is loaded"),
                )
            })
    }

    /// Registers a cancel token for the duration of the returned guard.
    fn track_query(&self, token: CancelToken) -> QueryGuard<'_> {
        let id = self.next_query_id.fetch_add(1, Ordering::Relaxed);
        self.inflight
            .lock()
            .expect("inflight lock poisoned")
            .insert(id, token);
        QueryGuard { engine: self, id }
    }

    fn handle_load(&self, graph: &str, path: &str) -> Result<String, ErrorResponse> {
        let loaded = read_graph_from_path(path).map_err(|e| {
            ErrorResponse::new(ErrorCode::LoadFailed, format!("cannot load `{path}`: {e}"))
        })?;
        let (n, m) = (loaded.num_vertices(), loaded.num_edges());
        let solver = DynamicRfcSolver::new(loaded).with_cache_capacity(self.config.cache_capacity);
        let slot = Arc::new(GraphSlot {
            solver: Mutex::new(solver),
        });
        self.graphs
            .write()
            .expect("registry lock poisoned")
            .insert(graph.to_string(), slot);
        Ok(format!(
            "{{\"ok\":true,\"op\":\"load\",\"graph\":\"{}\",\"n\":{},\"m\":{}}}",
            rfc_graph::json::escaped(graph),
            n,
            m
        ))
    }

    fn handle_solve(&self, graph: &str, spec: &QuerySpec) -> Result<String, ErrorResponse> {
        let slot = self.slot(graph)?;
        let token = CancelToken::new();
        let _guard = self.track_query(token.clone());
        let query = spec.to_query(token, self.config.default_time_limit);
        let mut solver = slot.solver.lock().expect("solver lock poisoned");
        let solution = if let Some(members) = spec.portfolio {
            if spec.shard.is_some() {
                return Err(ErrorResponse::new(
                    ErrorCode::InvalidParams,
                    "\"portfolio\" cannot be combined with \"shard\"",
                ));
            }
            // The racing portfolio solves a snapshot of the committed graph; the
            // per-component dynamic cache is bypassed, so budget-bound answers
            // always carry a freshly certified upper bound. The slot lock is
            // released once the snapshot is taken so updates are not blocked for
            // the whole (potentially long) race.
            let snapshot = RfcSolver::new(solver.graph().clone());
            drop(solver);
            let config = PortfolioConfig::new(members).with_anytime(spec.anytime);
            snapshot
                .solve_portfolio(&query, &config)
                .map_err(|e| ErrorResponse::new(ErrorCode::InvalidParams, e.to_string()))?
                .solution
        } else {
            let shard = spec.shard.unwrap_or_else(Shard::full);
            solver
                .solve_shard(&query, shard)
                .map_err(|e| ErrorResponse::new(ErrorCode::InvalidParams, e.to_string()))?
        };
        Ok(solve_response(graph, &solution))
    }

    fn handle_enumerate(
        &self,
        graph: &str,
        spec: &EnumSpec,
        emit: &mut dyn FnMut(&str) -> io::Result<()>,
    ) -> Result<Result<String, ErrorResponse>, io::Error> {
        let slot = match self.slot(graph) {
            Ok(slot) => slot,
            Err(e) => return Ok(Err(e)),
        };
        let token = CancelToken::new();
        let _guard = self.track_query(token.clone());
        let query = spec.to_query(token, self.config.default_time_limit);
        let shard = spec.shard.unwrap_or_else(Shard::full);
        let mut sink = EmitSink { emit, error: None };
        let mut solver = slot.solver.lock().expect("solver lock poisoned");
        let outcome = match spec.limit {
            Some(limit) => {
                let mut limited = LimitSink::new(&mut sink, limit);
                solver.enumerate_shard(&query, shard, &mut limited)
            }
            None => solver.enumerate_shard(&query, shard, &mut sink),
        };
        drop(solver);
        if let Some(error) = sink.error {
            // The client hung up mid-stream: surface the I/O error so the
            // connection loop closes instead of writing a terminal line into the void.
            return Err(error);
        }
        Ok(match outcome {
            Ok(outcome) => Ok(enumerate_response(
                graph,
                outcome.emitted,
                outcome.termination,
            )),
            Err(e) => Err(ErrorResponse::new(ErrorCode::InvalidParams, e.to_string())),
        })
    }

    fn handle_update(&self, graph: &str, ops: &[UpdateOp]) -> Result<String, ErrorResponse> {
        let slot = self.slot(graph)?;
        let mut solver = slot.solver.lock().expect("solver lock poisoned");
        for (i, op) in ops.iter().enumerate() {
            solver.apply_op(op).map_err(|e| {
                ErrorResponse::new(
                    ErrorCode::InvalidParams,
                    format!("op {i} ({}) rejected: {e}", op.to_jsonl()),
                )
            })?;
        }
        // An implicit trailing commit: a request is a batch, and every replica
        // observing the same request stream lands on the same committed graph.
        let outcome = solver.commit();
        let response = JsonValue::object(vec![
            ("ok", JsonValue::from(true)),
            ("op", JsonValue::string("update")),
            ("graph", JsonValue::string(graph)),
            ("ops", JsonValue::from(ops.len())),
            (
                "changed_vertices",
                JsonValue::from(outcome.changed_vertices),
            ),
            ("reductions_kept", JsonValue::from(outcome.reductions_kept)),
            (
                "reductions_invalidated",
                JsonValue::from(outcome.reductions_invalidated),
            ),
            ("commits", JsonValue::from(solver.commits())),
            ("n", JsonValue::from(outcome.num_vertices)),
            ("m", JsonValue::from(outcome.num_edges)),
        ]);
        Ok(response.to_string())
    }

    fn handle_metrics(&self) -> String {
        JsonValue::object(vec![
            ("ok", JsonValue::from(true)),
            ("op", JsonValue::string("metrics")),
            (
                "exposition",
                JsonValue::string(rfc_obs::metrics::global().render()),
            ),
        ])
        .to_string()
    }

    fn handle_stats(&self) -> String {
        let graphs = self.graphs.read().expect("registry lock poisoned");
        let mut names: Vec<&String> = graphs.keys().collect();
        names.sort();
        let mut entries = Vec::with_capacity(names.len());
        for name in names {
            let slot = &graphs[name];
            let solver = slot.solver.lock().expect("solver lock poisoned");
            let cache = solver.cache_stats();
            let cache_json = |s: rfc_core::CacheStats| {
                JsonValue::object(vec![
                    ("len", JsonValue::from(s.len)),
                    ("hits", JsonValue::from(s.hits)),
                    ("misses", JsonValue::from(s.misses)),
                    ("evictions", JsonValue::from(s.evictions)),
                ])
            };
            entries.push(JsonValue::object(vec![
                ("name", JsonValue::string(name.as_str())),
                ("n", JsonValue::from(solver.graph().num_vertices())),
                ("m", JsonValue::from(solver.graph().num_edges())),
                ("commits", JsonValue::from(solver.commits())),
                ("pending_ops", JsonValue::from(solver.pending_ops())),
                (
                    "cache",
                    JsonValue::object(vec![
                        ("solve", cache_json(cache.solve)),
                        ("enumerate", cache_json(cache.enumerate)),
                    ]),
                ),
            ]));
        }
        JsonValue::object(vec![
            ("ok", JsonValue::from(true)),
            ("op", JsonValue::string("stats")),
            ("graphs", JsonValue::Array(entries)),
            (
                "counters",
                JsonValue::object(vec![
                    (
                        "requests",
                        JsonValue::from(Counters::read(&self.counters.requests)),
                    ),
                    (
                        "errors",
                        JsonValue::from(Counters::read(&self.counters.errors)),
                    ),
                    (
                        "overloaded",
                        JsonValue::from(Counters::read(&self.counters.overloaded)),
                    ),
                ]),
            ),
        ])
        .to_string()
    }
}

impl Handler for LocalEngine {
    fn handle(&self, line: &str, emit: &mut dyn FnMut(&str) -> io::Result<()>) -> io::Result<Flow> {
        Counters::bump(&self.counters.requests);
        let request = match Request::parse(line) {
            Ok(request) => request,
            Err(error) => {
                Counters::bump(&self.counters.errors);
                emit(&error.to_line())?;
                return Ok(Flow::Continue);
            }
        };
        if self.is_shutting_down()
            && !matches!(
                request,
                Request::Stats | Request::Metrics | Request::Shutdown
            )
        {
            Counters::bump(&self.counters.errors);
            emit(
                &ErrorResponse::new(ErrorCode::ShuttingDown, "the daemon is shutting down")
                    .to_line(),
            )?;
            return Ok(Flow::Continue);
        }
        let started = std::time::Instant::now();
        let result = match &request {
            Request::Load { graph, path } => self.handle_load(graph, path),
            Request::Solve { graph, spec } => self.handle_solve(graph, spec),
            Request::Enumerate { graph, spec } => self.handle_enumerate(graph, spec, emit)?,
            Request::Update { graph, ops } => self.handle_update(graph, ops),
            Request::Stats => Ok(self.handle_stats()),
            Request::Metrics => Ok(self.handle_metrics()),
            Request::Ping { sleep_ms } => {
                if *sleep_ms > 0 {
                    std::thread::sleep(Duration::from_millis(*sleep_ms));
                }
                Ok("{\"ok\":true,\"op\":\"ping\"}".to_string())
            }
            Request::Shutdown => {
                self.shutting_down.store(true, Ordering::Relaxed);
                self.cancel_inflight();
                Ok("{\"ok\":true,\"op\":\"shutdown\"}".to_string())
            }
        };
        rfc_obs::metrics::global()
            .histogram(&format!(
                "rfc_request_latency_us{{op=\"{}\"}}",
                request_op_name(&request)
            ))
            .observe(started.elapsed().as_micros() as u64);
        let shutdown = matches!(request, Request::Shutdown);
        match result {
            Ok(line) => {
                // A client may close its socket right after sending `shutdown`
                // without reading the response; the daemon must still stop, so
                // only non-shutdown emit failures tear down the connection.
                if let Err(err) = emit(&line) {
                    if !shutdown {
                        return Err(err);
                    }
                }
            }
            Err(error) => {
                Counters::bump(&self.counters.errors);
                emit(&error.to_line())?;
            }
        }
        Ok(if shutdown {
            Flow::Shutdown
        } else {
            Flow::Continue
        })
    }
}

/// The wire op name of a request, for the per-op latency histogram label.
pub(crate) fn request_op_name(request: &Request) -> &'static str {
    match request {
        Request::Load { .. } => "load",
        Request::Solve { .. } => "solve",
        Request::Enumerate { .. } => "enumerate",
        Request::Update { .. } => "update",
        Request::Stats => "stats",
        Request::Metrics => "metrics",
        Request::Ping { .. } => "ping",
        Request::Shutdown => "shutdown",
    }
}

/// Removes the query's cancel token from the in-flight registry on drop.
struct QueryGuard<'a> {
    engine: &'a LocalEngine,
    id: u64,
}

impl Drop for QueryGuard<'_> {
    fn drop(&mut self) {
        self.engine
            .inflight
            .lock()
            .expect("inflight lock poisoned")
            .remove(&self.id);
    }
}

/// Streams enumeration cliques straight to the connection, stopping the search the
/// moment the client hangs up.
struct EmitSink<'a> {
    emit: &'a mut dyn FnMut(&str) -> io::Result<()>,
    error: Option<io::Error>,
}

impl CliqueSink for EmitSink<'_> {
    fn emit(&mut self, clique: FairClique) -> SinkFlow {
        match (self.emit)(&clique_stream_line(&clique)) {
            Ok(()) => SinkFlow::Continue,
            Err(error) => {
                self.error = Some(error);
                SinkFlow::Stop
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfc_graph::fixtures;

    fn engine_with_fig1() -> (LocalEngine, tempdir::TempPath) {
        let dir = tempdir::TempPath::new("rfc-serve-engine");
        let path = dir.path().join("fig1.graph");
        rfc_graph::io::write_graph_to_path(&fixtures::fig1_graph(), &path).unwrap();
        let engine = LocalEngine::new(EngineConfig::default(), Arc::new(Counters::default()));
        let mut lines = Vec::new();
        let flow = engine
            .handle(
                &format!(
                    "{{\"op\":\"load\",\"graph\":\"fig1\",\"path\":\"{}\"}}",
                    path.display()
                ),
                &mut |line| {
                    lines.push(line.to_string());
                    Ok(())
                },
            )
            .unwrap();
        assert_eq!(flow, Flow::Continue);
        let loaded = JsonValue::parse(&lines[0]).unwrap();
        assert_eq!(loaded.get("ok").and_then(JsonValue::as_bool), Some(true));
        (engine, dir)
    }

    fn run(engine: &LocalEngine, line: &str) -> (Vec<JsonValue>, Flow) {
        let mut lines = Vec::new();
        let flow = engine
            .handle(line, &mut |line| {
                lines.push(JsonValue::parse(line).expect("responses are valid JSON"));
                Ok(())
            })
            .unwrap();
        (lines, flow)
    }

    /// Minimal self-cleaning temp dir (std-only; no tempfile crate in the container).
    mod tempdir {
        use std::path::{Path, PathBuf};
        use std::sync::atomic::{AtomicU64, Ordering};

        pub struct TempPath(PathBuf);

        impl TempPath {
            pub fn new(prefix: &str) -> Self {
                static SEQ: AtomicU64 = AtomicU64::new(0);
                let dir = std::env::temp_dir().join(format!(
                    "{prefix}-{}-{}",
                    std::process::id(),
                    SEQ.fetch_add(1, Ordering::Relaxed)
                ));
                std::fs::create_dir_all(&dir).unwrap();
                TempPath(dir)
            }

            pub fn path(&self) -> &Path {
                &self.0
            }
        }

        impl Drop for TempPath {
            fn drop(&mut self) {
                let _ = std::fs::remove_dir_all(&self.0);
            }
        }
    }

    #[test]
    fn solve_matches_direct_library_answer() {
        let (engine, _dir) = engine_with_fig1();
        let (lines, _) = run(&engine, r#"{"op":"solve","graph":"fig1","k":3,"delta":1}"#);
        assert_eq!(lines.len(), 1);
        let response = &lines[0];
        assert_eq!(response.get("ok").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(
            response.get("termination").and_then(JsonValue::as_str),
            Some("optimal")
        );
        let cliques = response
            .get("cliques")
            .and_then(JsonValue::as_array)
            .unwrap();
        assert_eq!(
            cliques[0].get("size").and_then(JsonValue::as_u64),
            Some(7),
            "fig. 1 maximum relative fair clique has 7 vertices"
        );
    }

    #[test]
    fn portfolio_solve_matches_the_plain_answer_and_certifies_the_gap() {
        let (engine, _dir) = engine_with_fig1();
        let (lines, _) = run(
            &engine,
            r#"{"op":"solve","graph":"fig1","k":3,"delta":1,"portfolio":3,"anytime":true}"#,
        );
        assert_eq!(lines.len(), 1);
        let response = &lines[0];
        assert_eq!(response.get("ok").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(
            response.get("termination").and_then(JsonValue::as_str),
            Some("optimal")
        );
        let cliques = response
            .get("cliques")
            .and_then(JsonValue::as_array)
            .unwrap();
        assert_eq!(cliques[0].get("size").and_then(JsonValue::as_u64), Some(7));
        assert_eq!(
            response.get("upper_bound").and_then(JsonValue::as_u64),
            Some(7)
        );
        assert_eq!(
            response.get("optimality_gap").and_then(JsonValue::as_u64),
            Some(0)
        );

        // `anytime` without `portfolio` and `portfolio` + `shard` are typed errors.
        for bad in [
            r#"{"op":"solve","graph":"fig1","k":3,"delta":1,"anytime":true}"#,
            r#"{"op":"solve","graph":"fig1","k":3,"delta":1,"portfolio":2,"shard":{"index":0,"count":2}}"#,
        ] {
            let (lines, flow) = run(&engine, bad);
            assert_eq!(flow, Flow::Continue);
            assert_eq!(
                lines[0].get("error").and_then(JsonValue::as_str),
                Some("invalid_params"),
                "{bad}"
            );
        }
    }

    #[test]
    fn enumerate_streams_then_terminates() {
        let (engine, _dir) = engine_with_fig1();
        let (lines, _) = run(
            &engine,
            r#"{"op":"enumerate","graph":"fig1","k":2,"delta":1,"limit":3}"#,
        );
        let (stream, terminal) = lines.split_at(lines.len() - 1);
        assert_eq!(stream.len(), 3);
        for line in stream {
            assert!(line.get("ok").is_none(), "stream lines carry no verdict");
            assert!(line.get("clique").is_some());
        }
        assert_eq!(
            terminal[0].get("emitted").and_then(JsonValue::as_u64),
            Some(3)
        );
        assert_eq!(
            terminal[0].get("termination").and_then(JsonValue::as_str),
            Some("sink_stopped")
        );
    }

    #[test]
    fn typed_errors_keep_the_connection() {
        let (engine, _dir) = engine_with_fig1();
        for (line, code) in [
            ("{nope", "parse_error"),
            (r#"{"op":"solve","graph":"missing","k":2}"#, "unknown_graph"),
            (r#"{"op":"solve","graph":"fig1","k":0}"#, "invalid_params"),
            (
                r#"{"op":"load","graph":"g","path":"/nonexistent/g.graph"}"#,
                "load_failed",
            ),
        ] {
            let (lines, flow) = run(&engine, line);
            assert_eq!(flow, Flow::Continue, "{line}");
            assert_eq!(
                lines[0].get("error").and_then(JsonValue::as_str),
                Some(code),
                "{line}"
            );
        }
        // The engine still answers after every error.
        let (lines, _) = run(&engine, r#"{"op":"ping"}"#);
        assert_eq!(lines[0].get("ok").and_then(JsonValue::as_bool), Some(true));
    }

    #[test]
    fn update_commits_and_solves_see_the_new_graph() {
        let (engine, _dir) = engine_with_fig1();
        let (before, _) = run(&engine, r#"{"op":"solve","graph":"fig1","k":3,"delta":1}"#);
        let best_before = before[0]
            .get("cliques")
            .and_then(JsonValue::as_array)
            .unwrap()[0]
            .get("size")
            .and_then(JsonValue::as_u64)
            .unwrap();
        // Remove a vertex of the winning clique; the answer must shrink or move.
        let (update, _) = run(
            &engine,
            r#"{"op":"update","graph":"fig1","ops":[{"op":"remove_vertex","v":6}]}"#,
        );
        assert_eq!(update[0].get("ok").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(update[0].get("ops").and_then(JsonValue::as_u64), Some(1));
        let (after, _) = run(&engine, r#"{"op":"solve","graph":"fig1","k":3,"delta":1}"#);
        let best_after = after[0]
            .get("cliques")
            .and_then(JsonValue::as_array)
            .unwrap()
            .first()
            .and_then(|c| c.get("size"))
            .and_then(JsonValue::as_u64)
            .unwrap_or(0);
        assert!(best_after <= best_before);
        // The update really was committed.
        assert!(update[0].get("commits").and_then(JsonValue::as_u64) >= Some(1));
    }

    #[test]
    fn stats_reports_graphs_and_counters() {
        let (engine, _dir) = engine_with_fig1();
        let _ = run(&engine, r#"{"op":"solve","graph":"fig1","k":3,"delta":1}"#);
        let (lines, _) = run(&engine, r#"{"op":"stats"}"#);
        let stats = &lines[0];
        let graphs = stats.get("graphs").and_then(JsonValue::as_array).unwrap();
        assert_eq!(graphs.len(), 1);
        assert_eq!(
            graphs[0].get("name").and_then(JsonValue::as_str),
            Some("fig1")
        );
        assert!(stats
            .get("counters")
            .and_then(|c| c.get("requests"))
            .and_then(JsonValue::as_u64)
            .is_some());
    }

    #[test]
    fn shutdown_flips_flow_and_rejects_new_work() {
        let (engine, _dir) = engine_with_fig1();
        let (lines, flow) = run(&engine, r#"{"op":"shutdown"}"#);
        assert_eq!(flow, Flow::Shutdown);
        assert_eq!(lines[0].get("ok").and_then(JsonValue::as_bool), Some(true));
        let (lines, flow) = run(&engine, r#"{"op":"solve","graph":"fig1","k":3}"#);
        assert_eq!(flow, Flow::Continue);
        assert_eq!(
            lines[0].get("error").and_then(JsonValue::as_str),
            Some("shutting_down")
        );
        // Stats and metrics still answer during shutdown.
        let (lines, _) = run(&engine, r#"{"op":"stats"}"#);
        assert_eq!(lines[0].get("ok").and_then(JsonValue::as_bool), Some(true));
        let (lines, _) = run(&engine, r#"{"op":"metrics"}"#);
        assert_eq!(lines[0].get("ok").and_then(JsonValue::as_bool), Some(true));
    }

    #[test]
    fn metrics_returns_exposition_text_with_request_latencies() {
        let (engine, _dir) = engine_with_fig1();
        let _ = run(&engine, r#"{"op":"solve","graph":"fig1","k":3,"delta":1}"#);
        let (lines, flow) = run(&engine, r#"{"op":"metrics"}"#);
        assert_eq!(flow, Flow::Continue);
        let response = &lines[0];
        assert_eq!(response.get("ok").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(
            response.get("op").and_then(JsonValue::as_str),
            Some("metrics")
        );
        let text = response
            .get("exposition")
            .and_then(JsonValue::as_str)
            .expect("metrics response carries the exposition text");
        // The solve above must have recorded a per-op latency observation, and
        // the exposition must carry Prometheus TYPE headers.
        assert!(
            text.contains("# TYPE rfc_request_latency_us histogram"),
            "{text}"
        );
        assert!(
            text.contains("rfc_request_latency_us_count{op=\"solve\"}"),
            "{text}"
        );
        assert!(text.contains("rfc_dynamic_cache_misses_total"), "{text}");
        assert!(text.contains("rfc_search_solves_total"), "{text}");
    }
}
