//! The multi-process shard executor: N replica worker processes, each owning a
//! full copy of every graph, with queries fanned out one component [`Shard`] per
//! worker and the per-shard answers merged into one response.
//!
//! ## Replication and determinism
//!
//! Workers are replicas, not partitions: every `load` and `update` is broadcast to
//! all of them (under a state lock, so replicas observe the same mutation order)
//! and recorded in a history. Replicas that committed the same update stream build
//! identical reduced-component lists, so `Shard { index: i, count: n }` names the
//! same components in every process — sharding the *query*, not the data. Components
//! are independent subproblems, which makes merging lossless: the global maximum is
//! the best per-shard maximum, and the global enumeration is the concatenation of
//! the per-shard streams.
//!
//! ## Fault isolation
//!
//! A worker that dies mid-request degrades to a typed `worker_failed` error — the
//! daemon itself keeps serving. The dead worker is respawned lazily on the next
//! request that needs it, replaying the recorded history to rebuild its graphs.

use std::io::{self, BufRead, BufReader, Write};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use rfc_core::Shard;
use rfc_graph::json::JsonValue;

use crate::protocol::{is_terminal, ErrorCode, ErrorResponse, Request};
use crate::{Counters, Flow, Handler};

/// One worker child process with its pipes.
struct WorkerProc {
    child: Child,
    pid: u32,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

/// One worker slot: the process (absent after a crash, until lazily respawned) and
/// its restart counter.
struct WorkerSlot {
    proc: Mutex<Option<WorkerProc>>,
    restarts: AtomicU64,
}

/// The multi-process engine behind `maxfaircliqued --workers N`.
pub struct ShardedEngine {
    worker_cmd: Vec<String>,
    workers: Vec<WorkerSlot>,
    /// Every successful `load`/`update` line, in commit order — the replay script
    /// that rebuilds a respawned worker's state.
    history: Mutex<Vec<String>>,
    /// Mutations broadcast under the write half; queries fan out under the read
    /// half, so a query never observes half of an update.
    state_lock: RwLock<()>,
    shutting_down: AtomicBool,
    counters: Arc<Counters>,
}

impl ShardedEngine {
    /// Spawns `count` worker processes running `worker_cmd` (argv form).
    pub fn spawn(
        worker_cmd: &[String],
        count: usize,
        counters: Arc<Counters>,
    ) -> io::Result<ShardedEngine> {
        if worker_cmd.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "worker command must not be empty",
            ));
        }
        let engine = ShardedEngine {
            worker_cmd: worker_cmd.to_vec(),
            workers: (0..count.max(1))
                .map(|_| WorkerSlot {
                    proc: Mutex::new(None),
                    restarts: AtomicU64::new(0),
                })
                .collect(),
            history: Mutex::new(Vec::new()),
            state_lock: RwLock::new(()),
            shutting_down: AtomicBool::new(false),
            counters,
        };
        for slot in &engine.workers {
            let mut proc = slot.proc.lock().expect("worker lock poisoned");
            *proc = Some(engine.spawn_proc()?);
        }
        Ok(engine)
    }

    /// Number of worker processes (shard count).
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    fn spawn_proc(&self) -> io::Result<WorkerProc> {
        let mut command = Command::new(&self.worker_cmd[0]);
        command
            .args(&self.worker_cmd[1..])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped());
        let mut child = command.spawn()?;
        let stdin = child.stdin.take().expect("worker stdin was piped");
        let stdout = child.stdout.take().expect("worker stdout was piped");
        let pid = child.id();
        Ok(WorkerProc {
            child,
            pid,
            stdin,
            stdout: BufReader::new(stdout),
        })
    }

    /// Sends `line` to worker `index` and reads response lines up to and including
    /// the terminal one. Worker death (broken pipe, EOF) clears the slot — the next
    /// call respawns and replays — and surfaces as `worker_failed`.
    fn call(&self, index: usize, line: &str) -> Result<Vec<JsonValue>, ErrorResponse> {
        let mut slot = self.workers[index]
            .proc
            .lock()
            .expect("worker lock poisoned");
        if slot.is_none() {
            *slot = Some(self.respawn_and_replay(index)?);
        }
        let proc = slot.as_mut().expect("slot was just filled");
        match exchange(proc, line) {
            Ok(lines) => Ok(lines),
            Err(e) => {
                let _ = proc.child.kill();
                let _ = proc.child.wait();
                *slot = None;
                Err(ErrorResponse::new(
                    ErrorCode::WorkerFailed,
                    format!("worker {index} failed: {e}"),
                ))
            }
        }
    }

    fn respawn_and_replay(&self, index: usize) -> Result<WorkerProc, ErrorResponse> {
        self.workers[index].restarts.fetch_add(1, Ordering::Relaxed);
        let mut proc = self.spawn_proc().map_err(|e| {
            ErrorResponse::new(
                ErrorCode::WorkerFailed,
                format!("cannot respawn worker {index}: {e}"),
            )
        })?;
        let history = self.history.lock().expect("history lock poisoned").clone();
        for line in &history {
            let lines = exchange(&mut proc, line).map_err(|e| {
                ErrorResponse::new(
                    ErrorCode::WorkerFailed,
                    format!("worker {index} failed during state replay: {e}"),
                )
            })?;
            let terminal = lines.last().expect("exchange returns a terminal line");
            if terminal.get("ok").and_then(JsonValue::as_bool) != Some(true) {
                return Err(ErrorResponse::new(
                    ErrorCode::WorkerFailed,
                    format!("worker {index} rejected replayed state: {terminal}"),
                ));
            }
        }
        Ok(proc)
    }

    /// Broadcasts a mutation (`load`/`update`) to every worker in turn, recording it
    /// in the replay history when all replicas accepted it.
    fn broadcast_mutation(&self, line: &str) -> Result<String, ErrorResponse> {
        let _guard = self.state_lock.write().expect("state lock poisoned");
        let mut first_response: Option<String> = None;
        for index in 0..self.workers.len() {
            let lines = self.call(index, line)?;
            let terminal = lines.last().expect("exchange returns a terminal line");
            if terminal.get("ok").and_then(JsonValue::as_bool) != Some(true) {
                // A typed rejection (bad path, invalid op) is deterministic across
                // replicas: forward it and keep it out of the history.
                return Err(terminal_as_error(terminal));
            }
            if first_response.is_none() {
                first_response = Some(terminal.to_string());
            }
        }
        self.history
            .lock()
            .expect("history lock poisoned")
            .push(line.to_string());
        Ok(first_response.expect("at least one worker"))
    }

    fn handle_solve(&self, graph: &str, request: &Request) -> Result<String, ErrorResponse> {
        let _guard = self.state_lock.read().expect("state lock poisoned");
        let count = self.workers.len();
        let top = match request {
            Request::Solve { spec, .. } => spec.top.unwrap_or(1),
            _ => 1,
        };
        let mut results: Vec<Option<Result<Vec<JsonValue>, ErrorResponse>>> =
            (0..count).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(count);
            for index in 0..count {
                let line = sharded_line(request, index, count);
                handles.push(scope.spawn(move || self.call(index, &line)));
            }
            for (index, handle) in handles.into_iter().enumerate() {
                results[index] = Some(handle.join().expect("shard thread panicked"));
            }
        });
        let mut terminals = Vec::with_capacity(count);
        for result in results {
            let lines = result.expect("all shards joined")?;
            let terminal = lines.into_iter().last().expect("terminal line");
            if terminal.get("ok").and_then(JsonValue::as_bool) != Some(true) {
                return Err(terminal_as_error(&terminal));
            }
            terminals.push(terminal);
        }
        Ok(merge_solve(graph, &terminals, top))
    }

    fn handle_enumerate(
        &self,
        request: &Request,
        emit: &mut dyn FnMut(&str) -> io::Result<()>,
    ) -> io::Result<Result<String, ErrorResponse>> {
        let _guard = self.state_lock.read().expect("state lock poisoned");
        let count = self.workers.len();
        let (graph, limit) = match request {
            Request::Enumerate { graph, spec } => (graph.clone(), spec.limit),
            _ => unreachable!("caller matched Enumerate"),
        };
        let mut emitted: u64 = 0;
        let mut remaining = limit;
        // "complete" is the weakest termination; any shard that stopped early wins.
        let mut termination = "complete".to_string();
        for index in 0..count {
            if remaining == Some(0) {
                termination = "sink_stopped".to_string();
                break;
            }
            let line = match request {
                Request::Enumerate { graph, spec } => {
                    let mut spec = spec.clone();
                    spec.shard = Shard::new(index, count);
                    spec.limit = remaining;
                    Request::Enumerate {
                        graph: graph.clone(),
                        spec,
                    }
                    .to_line()
                }
                _ => unreachable!(),
            };
            let lines = match self.call(index, &line) {
                Ok(lines) => lines,
                Err(e) => return Ok(Err(e)),
            };
            let (stream, terminal) = lines.split_at(lines.len() - 1);
            let terminal = &terminal[0];
            if terminal.get("ok").and_then(JsonValue::as_bool) != Some(true) {
                return Ok(Err(terminal_as_error(terminal)));
            }
            for clique in stream {
                emit(&clique.to_string())?;
            }
            let shard_emitted = terminal
                .get("emitted")
                .and_then(JsonValue::as_u64)
                .unwrap_or(0);
            emitted += shard_emitted;
            if let Some(left) = remaining {
                remaining = Some(left.saturating_sub(shard_emitted));
            }
            let shard_termination = terminal
                .get("termination")
                .and_then(JsonValue::as_str)
                .unwrap_or("complete");
            if termination_rank(shard_termination) > termination_rank(&termination) {
                termination = shard_termination.to_string();
            }
        }
        Ok(Ok(format!(
            "{{\"ok\":true,\"op\":\"enumerate\",\"graph\":\"{}\",\"emitted\":{},\"termination\":\"{}\"}}",
            rfc_graph::json::escaped(&graph),
            emitted,
            termination
        )))
    }

    fn handle_stats(&self) -> Result<String, ErrorResponse> {
        // Worker 0 is the reference replica for graph/cache statistics.
        let lines = self.call(0, "{\"op\":\"stats\"}")?;
        let reference = lines.into_iter().last().expect("terminal line");
        let graphs = reference
            .get("graphs")
            .cloned()
            .unwrap_or(JsonValue::Array(Vec::new()));
        let workers = self
            .workers
            .iter()
            .enumerate()
            .map(|(id, slot)| {
                let proc = slot.proc.lock().expect("worker lock poisoned");
                let (alive, pid) = match proc.as_ref() {
                    Some(proc) => (true, Some(proc.pid)),
                    None => (false, None),
                };
                JsonValue::object(vec![
                    ("id", JsonValue::from(id)),
                    ("pid", pid.map(JsonValue::from).unwrap_or(JsonValue::Null)),
                    ("alive", JsonValue::from(alive)),
                    (
                        "restarts",
                        JsonValue::from(slot.restarts.load(Ordering::Relaxed)),
                    ),
                ])
            })
            .collect();
        Ok(JsonValue::object(vec![
            ("ok", JsonValue::from(true)),
            ("op", JsonValue::string("stats")),
            ("graphs", graphs),
            ("workers", JsonValue::Array(workers)),
            (
                "counters",
                JsonValue::object(vec![
                    (
                        "requests",
                        JsonValue::from(Counters::read(&self.counters.requests)),
                    ),
                    (
                        "errors",
                        JsonValue::from(Counters::read(&self.counters.errors)),
                    ),
                    (
                        "overloaded",
                        JsonValue::from(Counters::read(&self.counters.overloaded)),
                    ),
                ]),
            ),
        ])
        .to_string())
    }

    fn handle_shutdown(&self) {
        self.shutting_down.store(true, Ordering::Relaxed);
        for slot in &self.workers {
            let mut proc = slot.proc.lock().expect("worker lock poisoned");
            if let Some(mut worker) = proc.take() {
                let _ = writeln!(worker.stdin, "{{\"op\":\"shutdown\"}}");
                let _ = worker.stdin.flush();
                let _ = worker.child.kill();
                let _ = worker.child.wait();
            }
        }
    }
}

impl Drop for ShardedEngine {
    fn drop(&mut self) {
        for slot in &self.workers {
            if let Ok(mut proc) = slot.proc.lock() {
                if let Some(worker) = proc.as_mut() {
                    let _ = worker.child.kill();
                    let _ = worker.child.wait();
                }
            }
        }
    }
}

impl Handler for ShardedEngine {
    fn handle(&self, line: &str, emit: &mut dyn FnMut(&str) -> io::Result<()>) -> io::Result<Flow> {
        Counters::bump(&self.counters.requests);
        let request = match Request::parse(line) {
            Ok(request) => request,
            Err(error) => {
                Counters::bump(&self.counters.errors);
                emit(&error.to_line())?;
                return Ok(Flow::Continue);
            }
        };
        if self.shutting_down.load(Ordering::Relaxed)
            && !matches!(
                request,
                Request::Stats | Request::Metrics | Request::Shutdown
            )
        {
            Counters::bump(&self.counters.errors);
            emit(
                &ErrorResponse::new(ErrorCode::ShuttingDown, "the daemon is shutting down")
                    .to_line(),
            )?;
            return Ok(Flow::Continue);
        }
        let started = std::time::Instant::now();
        let result = match &request {
            // Mutations replicate; the canonical re-serialized line goes in the
            // history so every respawn replays byte-identical requests.
            Request::Load { .. } | Request::Update { .. } => {
                self.broadcast_mutation(&request.to_line())
            }
            Request::Solve { graph, .. } => self.handle_solve(graph, &request),
            Request::Enumerate { .. } => self.handle_enumerate(&request, emit)?,
            Request::Stats => self.handle_stats(),
            // The parent's own registry: fan-out bookkeeping lives here, and the
            // worker processes' registries are process-local by design.
            Request::Metrics => Ok(JsonValue::object(vec![
                ("ok", JsonValue::from(true)),
                ("op", JsonValue::string("metrics")),
                (
                    "exposition",
                    JsonValue::string(rfc_obs::metrics::global().render()),
                ),
            ])
            .to_string()),
            Request::Ping { .. } => {
                // Broadcast so the ping's sleep occupies every worker (admission and
                // health tests rely on the latency floor being real).
                (0..self.workers.len())
                    .try_for_each(|index| self.call(index, &request.to_line()).map(|_| ()))
                    .map(|()| "{\"ok\":true,\"op\":\"ping\"}".to_string())
            }
            Request::Shutdown => {
                self.handle_shutdown();
                Ok("{\"ok\":true,\"op\":\"shutdown\"}".to_string())
            }
        };
        rfc_obs::metrics::global()
            .histogram(&format!(
                "rfc_request_latency_us{{op=\"{}\"}}",
                crate::engine::request_op_name(&request)
            ))
            .observe(started.elapsed().as_micros() as u64);
        let shutdown = matches!(request, Request::Shutdown);
        match result {
            Ok(response) => {
                // As in `LocalEngine`: a client may disconnect without reading
                // the shutdown response, and the daemon must still stop.
                if let Err(err) = emit(&response) {
                    if !shutdown {
                        return Err(err);
                    }
                }
            }
            Err(error) => {
                Counters::bump(&self.counters.errors);
                emit(&error.to_line())?;
            }
        }
        Ok(if shutdown {
            Flow::Shutdown
        } else {
            Flow::Continue
        })
    }
}

/// One request/response exchange over a worker's pipes.
fn exchange(proc: &mut WorkerProc, line: &str) -> io::Result<Vec<JsonValue>> {
    writeln!(proc.stdin, "{line}")?;
    proc.stdin.flush()?;
    let mut lines = Vec::new();
    loop {
        let mut raw = String::new();
        if proc.stdout.read_line(&mut raw)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "worker closed its stdout mid-response",
            ));
        }
        let value = JsonValue::parse(raw.trim_end()).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unparseable worker response: {e}"),
            )
        })?;
        let terminal = is_terminal(&value);
        lines.push(value);
        if terminal {
            return Ok(lines);
        }
    }
}

/// Re-serializes a request with the shard for worker `index` of `count` injected.
fn sharded_line(request: &Request, index: usize, count: usize) -> String {
    match request {
        Request::Solve { graph, spec } => {
            let mut spec = spec.clone();
            spec.shard = Shard::new(index, count);
            Request::Solve {
                graph: graph.clone(),
                spec,
            }
            .to_line()
        }
        Request::Enumerate { graph, spec } => {
            let mut spec = spec.clone();
            spec.shard = Shard::new(index, count);
            Request::Enumerate {
                graph: graph.clone(),
                spec,
            }
            .to_line()
        }
        other => other.to_line(),
    }
}

/// Converts a worker's `ok:false` terminal into an [`ErrorResponse`] to forward.
fn terminal_as_error(terminal: &JsonValue) -> ErrorResponse {
    let message = terminal
        .get("message")
        .and_then(JsonValue::as_str)
        .unwrap_or("worker returned an error")
        .to_string();
    let code = match terminal.get("error").and_then(JsonValue::as_str) {
        Some("unknown_graph") => ErrorCode::UnknownGraph,
        Some("invalid_params") => ErrorCode::InvalidParams,
        Some("load_failed") => ErrorCode::LoadFailed,
        Some("parse_error") => ErrorCode::ParseError,
        Some("bad_request") => ErrorCode::BadRequest,
        Some("shutting_down") => ErrorCode::ShuttingDown,
        _ => ErrorCode::WorkerFailed,
    };
    ErrorResponse::new(code, message)
}

/// Early-stop precedence for merged terminations: a run that was cancelled beats a
/// budget stop beats a sink stop beats completeness.
fn termination_rank(termination: &str) -> u8 {
    match termination {
        "cancelled" => 3,
        "budget_exhausted" => 2,
        "sink_stopped" => 1,
        _ => 0,
    }
}

/// Merges per-shard solve terminals: best cliques across shards, summed branch
/// counts, max wall-clock, ANDed cache-hit flags, and the strongest early-stop
/// termination (all-infeasible stays infeasible; any shard's clique makes the merge
/// non-infeasible).
fn merge_solve(graph: &str, terminals: &[JsonValue], top: usize) -> String {
    let mut cliques: Vec<JsonValue> = Vec::new();
    let mut branches: u64 = 0;
    let mut elapsed: u64 = 0;
    let mut cache_hit = true;
    let mut any_early: Option<&str> = None;
    let mut all_infeasible = true;
    for terminal in terminals {
        if let Some(shard_cliques) = terminal.get("cliques").and_then(JsonValue::as_array) {
            cliques.extend(shard_cliques.iter().cloned());
        }
        branches += terminal
            .get("branches")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0);
        elapsed = elapsed.max(
            terminal
                .get("elapsed_us")
                .and_then(JsonValue::as_u64)
                .unwrap_or(0),
        );
        cache_hit &= terminal
            .get("reduction_cache_hit")
            .and_then(JsonValue::as_bool)
            .unwrap_or(false);
        let termination = terminal
            .get("termination")
            .and_then(JsonValue::as_str)
            .unwrap_or("optimal");
        if termination != "infeasible" {
            all_infeasible = false;
        }
        if termination_rank(termination) >= 2 {
            match any_early {
                Some(current) if termination_rank(current) >= termination_rank(termination) => {}
                _ => any_early = Some(termination),
            }
        }
    }
    cliques.sort_by_key(|clique| {
        std::cmp::Reverse(clique.get("size").and_then(JsonValue::as_u64).unwrap_or(0))
    });
    cliques.truncate(top);
    let termination = if let Some(early) = any_early {
        early
    } else if all_infeasible && cliques.is_empty() {
        "infeasible"
    } else {
        "optimal"
    };
    let mut line = format!(
        "{{\"ok\":true,\"op\":\"solve\",\"graph\":\"{}\",\"termination\":\"{}\",\"cliques\":[",
        rfc_graph::json::escaped(graph),
        termination
    );
    for (i, clique) in cliques.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push_str(&clique.to_string());
    }
    use std::fmt::Write as _;
    let _ = write!(
        line,
        "],\"branches\":{branches},\"elapsed_us\":{elapsed},\"reduction_cache_hit\":{cache_hit}}}"
    );
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    fn terminal(json: &str) -> JsonValue {
        JsonValue::parse(json).unwrap()
    }

    #[test]
    fn merge_takes_the_best_clique_across_shards() {
        let merged = merge_solve(
            "g",
            &[
                terminal(
                    r#"{"ok":true,"op":"solve","graph":"g","termination":"optimal","cliques":[{"size":5,"vertices":[1,2,3,4,5]}],"branches":10,"elapsed_us":40,"reduction_cache_hit":true}"#,
                ),
                terminal(
                    r#"{"ok":true,"op":"solve","graph":"g","termination":"optimal","cliques":[{"size":8,"vertices":[6,7,8,9,10,11,12,13]}],"branches":7,"elapsed_us":90,"reduction_cache_hit":false}"#,
                ),
            ],
            1,
        );
        let value = JsonValue::parse(&merged).unwrap();
        assert_eq!(
            value.get("termination").and_then(JsonValue::as_str),
            Some("optimal")
        );
        let cliques = value.get("cliques").and_then(JsonValue::as_array).unwrap();
        assert_eq!(cliques.len(), 1);
        assert_eq!(cliques[0].get("size").and_then(JsonValue::as_u64), Some(8));
        assert_eq!(value.get("branches").and_then(JsonValue::as_u64), Some(17));
        assert_eq!(
            value.get("elapsed_us").and_then(JsonValue::as_u64),
            Some(90)
        );
        assert_eq!(
            value
                .get("reduction_cache_hit")
                .and_then(JsonValue::as_bool),
            Some(false)
        );
    }

    #[test]
    fn merge_termination_precedence() {
        let optimal = r#"{"ok":true,"termination":"optimal","cliques":[{"size":3}],"branches":0,"elapsed_us":0,"reduction_cache_hit":true}"#;
        let infeasible = r#"{"ok":true,"termination":"infeasible","cliques":[],"branches":0,"elapsed_us":0,"reduction_cache_hit":true}"#;
        let budget = r#"{"ok":true,"termination":"budget_exhausted","cliques":[],"branches":0,"elapsed_us":0,"reduction_cache_hit":true}"#;
        let cancelled = r#"{"ok":true,"termination":"cancelled","cliques":[],"branches":0,"elapsed_us":0,"reduction_cache_hit":true}"#;
        let merged_termination = |terminals: &[&str]| {
            let values: Vec<JsonValue> = terminals.iter().map(|t| terminal(t)).collect();
            let merged = merge_solve("g", &values, 1);
            JsonValue::parse(&merged)
                .unwrap()
                .get("termination")
                .and_then(JsonValue::as_str)
                .unwrap()
                .to_string()
        };
        assert_eq!(merged_termination(&[optimal, infeasible]), "optimal");
        assert_eq!(merged_termination(&[infeasible, infeasible]), "infeasible");
        assert_eq!(merged_termination(&[optimal, budget]), "budget_exhausted");
        assert_eq!(merged_termination(&[budget, cancelled]), "cancelled");
    }

    #[test]
    fn sharded_line_injects_the_shard() {
        let request = Request::parse(r#"{"op":"solve","graph":"g","k":2}"#).unwrap();
        let line = sharded_line(&request, 1, 3);
        let value = JsonValue::parse(&line).unwrap();
        let shard = value.get("shard").unwrap();
        assert_eq!(shard.get("index").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(shard.get("count").and_then(JsonValue::as_u64), Some(3));
    }

    #[test]
    fn spawn_rejects_an_empty_command() {
        let err = match ShardedEngine::spawn(&[], 2, Arc::new(Counters::default())) {
            Err(err) => err,
            Ok(_) => panic!("an empty worker command must be rejected"),
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}
