//! # rfc-serve — `maxfaircliqued`, a solver daemon over std primitives
//!
//! Every capability of the workspace — budgeted [`rfc_core::RfcSolver`] queries,
//! streaming enumeration, incremental updates through
//! [`rfc_core::DynamicRfcSolver`] — was previously reachable only as a one-shot CLI
//! invocation that pays graph load + preprocessing per call. This crate turns the
//! stack into a long-running service:
//!
//! * **A TCP daemon** ([`server::Server`]): `std::net::TcpListener`,
//!   thread-per-connection, speaking a line-delimited JSONL protocol
//!   ([`protocol`]) with requests `load` / `solve` / `enumerate` / `update` /
//!   `stats` / `ping` / `shutdown`. No tokio, no serde — the container builds
//!   against std and path crates only, so the protocol reuses the workspace's
//!   shared [`rfc_graph::json`] layer and the `UpdateOp` JSONL format.
//! * **A registry of named graphs** ([`engine::LocalEngine`]): each graph is a
//!   `Mutex<DynamicRfcSolver>`, so the dynamic solver's canonical per-component
//!   result caches become a **cross-client shared query cache** — one client's
//!   solve warms the next client's, and an `update` from one client invalidates
//!   exactly what every other client observes. Caches are LRU-bounded
//!   (`--cache-cap`) with eviction counters surfaced by `stats`.
//! * **Budgets and admission control**: every query gets a per-request
//!   [`rfc_core::CancelToken`] registered with the engine (a `shutdown` cancels
//!   all in-flight work, which returns verified best-so-far answers), time/node
//!   budgets are honored per request, and a bounded worker pool + queue depth
//!   limit ([`server::Admission`]) returns a typed `overloaded` error instead of
//!   stalling when the daemon is saturated.
//! * **A multi-process shard executor** ([`executor::ShardedEngine`]): the daemon
//!   can spawn N `maxfairclique worker` child processes over `std::process`
//!   stdin/stdout pipes, replicate every graph into each worker, and fan a query
//!   out with a distinct [`rfc_core::Shard`] per worker — component `i` belongs to
//!   worker `i % N` — merging the per-shard incumbents / enumeration streams into
//!   one answer. Process isolation means a worker crash degrades to a typed
//!   `worker_failed` error (and a transparent respawn + state replay on the next
//!   request) instead of taking the daemon down.
//!
//! The wire protocol, error codes and admission semantics are documented in the
//! repository README ("Serving") and in [`protocol`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod executor;
pub mod protocol;
pub mod server;
pub mod worker;

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};

pub use engine::{EngineConfig, LocalEngine};
pub use executor::ShardedEngine;
pub use protocol::{ErrorCode, ErrorResponse, Request};
pub use server::{Admission, ServeConfig, Server};

/// Whether the connection should stay open after a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Keep serving this connection.
    Continue,
    /// The daemon is shutting down: close after the current response.
    Shutdown,
}

/// One request handler: the in-process [`LocalEngine`] or the multi-process
/// [`ShardedEngine`]. `emit` receives every response line (stream lines first,
/// exactly one terminal line last) without trailing newlines; an `Err` from `emit`
/// means the client is gone and the handler should stop streaming.
pub trait Handler: Send + Sync {
    /// Handles one raw request line.
    fn handle(&self, line: &str, emit: &mut dyn FnMut(&str) -> io::Result<()>) -> io::Result<Flow>;
}

/// Daemon-level request counters, shared between the server loop and the engines
/// (which render them in `stats` responses).
#[derive(Debug, Default)]
pub struct Counters {
    /// Requests received (including malformed ones).
    pub requests: AtomicU64,
    /// Requests answered with a typed error.
    pub errors: AtomicU64,
    /// Requests rejected by admission control.
    pub overloaded: AtomicU64,
}

impl Counters {
    /// Bumps a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads a counter.
    pub fn read(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}
