//! The `maxfaircliqued` wire protocol: line-delimited JSON over TCP (or pipes).
//!
//! One JSON object per line in each direction. Every request produces **exactly one
//! terminal response line** — an object with an `"ok"` field — optionally preceded
//! by stream lines (objects *without* an `"ok"` field; today only the
//! `{"clique":…}` lines of an `enumerate`). Clients therefore read lines until they
//! see `"ok"`.
//!
//! ## Requests
//!
//! ```text
//! {"op":"load","graph":"g","path":"/data/g.graph"}
//! {"op":"solve","graph":"g","k":3,"delta":1}
//! {"op":"solve","graph":"g","model":"weak","k":2,"top":5,"time_limit_ms":500}
//! {"op":"enumerate","graph":"g","k":2,"delta":1,"min_size":4,"limit":100}
//! {"op":"update","graph":"g","ops":[{"op":"insert_edge","u":3,"v":9},{"op":"commit"}]}
//! {"op":"stats"}
//! {"op":"metrics"}
//! {"op":"ping","sleep_ms":100}
//! {"op":"shutdown"}
//! ```
//!
//! `model` is `"relative"` (default), `"weak"` or `"strong"`; `delta` applies to the
//! relative model only (default 1). `top` switches solve to the top-k objective.
//! `threads` sets the per-query search parallelism (default serial: the daemon
//! parallelizes across clients, not within queries). `shard` —
//! `{"index":i,"count":n}` — restricts the query to the components a
//! [`Shard`] owns; the daemon's worker executor uses it internally, and the `update`
//! ops array reuses the [`UpdateOp`] JSONL objects verbatim.
//!
//! ## Responses
//!
//! ```text
//! {"ok":true,"op":"load","graph":"g","n":15,"m":37}
//! {"ok":true,"op":"solve","graph":"g","termination":"optimal","cliques":[{"size":7,…}],…}
//! {"clique":{"size":7,"count_a":4,"count_b":3,"vertices":[6,7,9,10,11,12,13]}}
//! {"ok":true,"op":"enumerate","graph":"g","emitted":5,"termination":"complete"}
//! {"ok":false,"error":"unknown_graph","message":"no graph named `h`"}
//! ```
//!
//! ## Error codes
//!
//! See [`ErrorCode`]; the daemon never answers a malformed or oversized line by
//! disconnecting — it answers with a typed error and keeps the connection.

use std::time::Duration;

use rfc_core::{
    Budget, EnumQuery, EnumTermination, FairClique, FairnessModel, Objective, Query, Shard,
    Solution, Termination,
};
use rfc_graph::json::{escaped, JsonValue};
use rfc_graph::UpdateOp;

use rfc_core::enumerate::clique_json;
use rfc_core::search::ThreadCount;
use rfc_core::{CancelToken, SearchConfig};

/// Default maximum request-line length (1 MiB). Longer lines are drained and
/// answered with [`ErrorCode::LineTooLong`] without desynchronizing the stream.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Typed protocol error codes (the `"error"` field of a failed response).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line was valid JSON but not a valid request.
    BadRequest,
    /// The line was not valid JSON.
    ParseError,
    /// The request line exceeded the daemon's line-length bound.
    LineTooLong,
    /// The named graph is not loaded.
    UnknownGraph,
    /// The request named parameters the solver rejects (bad k/δ/top, bad update op).
    InvalidParams,
    /// Admission control rejected the request: too many in flight and the wait
    /// queue is full. Back off and retry.
    Overloaded,
    /// The daemon could not read or parse the graph file of a `load`.
    LoadFailed,
    /// An I/O failure while serving the request.
    Io,
    /// A worker process died while serving the request. The daemon respawns the
    /// worker (replaying the graph state) for subsequent requests.
    WorkerFailed,
    /// The daemon is shutting down and no longer accepts work.
    ShuttingDown,
}

impl ErrorCode {
    /// The wire name of this code.
    pub fn as_str(&self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::ParseError => "parse_error",
            ErrorCode::LineTooLong => "line_too_long",
            ErrorCode::UnknownGraph => "unknown_graph",
            ErrorCode::InvalidParams => "invalid_params",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::LoadFailed => "load_failed",
            ErrorCode::Io => "io_error",
            ErrorCode::WorkerFailed => "worker_failed",
            ErrorCode::ShuttingDown => "shutting_down",
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A typed protocol error: code plus human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorResponse {
    /// The machine-readable code.
    pub code: ErrorCode,
    /// The human-readable detail.
    pub message: String,
}

impl ErrorResponse {
    /// Builds an error with the given code and message.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        Self {
            code,
            message: message.into(),
        }
    }

    /// Renders the terminal error line (without trailing newline).
    pub fn to_line(&self) -> String {
        format!(
            "{{\"ok\":false,\"error\":\"{}\",\"message\":\"{}\"}}",
            self.code.as_str(),
            escaped(&self.message)
        )
    }
}

impl std::fmt::Display for ErrorResponse {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

/// Parameters of a `solve` request.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// Fairness model of the query.
    pub model: FairnessModel,
    /// `Some(n)` = top-n objective, `None` = single maximum.
    pub top: Option<usize>,
    /// Per-request wall-clock budget, milliseconds.
    pub time_limit_ms: Option<u64>,
    /// Per-request branch-node budget.
    pub node_limit: Option<u64>,
    /// Per-query search threads (default serial).
    pub threads: Option<usize>,
    /// Race this many diversified configurations on a shared incumbent.
    pub portfolio: Option<usize>,
    /// With `portfolio`: also run the anytime local-search improver.
    pub anytime: bool,
    /// Component shard this query is restricted to (executor-internal).
    pub shard: Option<Shard>,
}

/// Parameters of an `enumerate` request.
#[derive(Debug, Clone, PartialEq)]
pub struct EnumSpec {
    /// Fairness model of the query.
    pub model: FairnessModel,
    /// Only emit cliques with at least this many vertices.
    pub min_size: usize,
    /// Stop after emitting this many cliques.
    pub limit: Option<u64>,
    /// Per-request wall-clock budget, milliseconds.
    pub time_limit_ms: Option<u64>,
    /// Per-request branch-node budget.
    pub node_limit: Option<u64>,
    /// Per-query search threads (default serial).
    pub threads: Option<usize>,
    /// Component shard this query is restricted to (executor-internal).
    pub shard: Option<Shard>,
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Load (or replace) a named graph from a path on the daemon's filesystem.
    Load {
        /// Registry name of the graph.
        graph: String,
        /// Path to a plain-text graph file.
        path: String,
    },
    /// Solve for a maximum (or top-k) fair clique.
    Solve {
        /// Registry name of the graph.
        graph: String,
        /// Query parameters.
        spec: QuerySpec,
    },
    /// Stream every maximal fair clique.
    Enumerate {
        /// Registry name of the graph.
        graph: String,
        /// Query parameters.
        spec: EnumSpec,
    },
    /// Apply a batch of update ops (committed at the end of the batch).
    Update {
        /// Registry name of the graph.
        graph: String,
        /// Ops in [`UpdateOp`] JSONL object form, applied in order.
        ops: Vec<UpdateOp>,
    },
    /// Report daemon, graph and cache statistics.
    Stats,
    /// Dump the process-wide metrics registry in Prometheus text exposition
    /// format (bypasses admission control, like `stats`).
    Metrics,
    /// Health check; optionally holds an admission slot for `sleep_ms`.
    Ping {
        /// Milliseconds to sleep while holding the admission slot (testing and
        /// health-probe latency floors).
        sleep_ms: u64,
    },
    /// Stop the daemon: cancel in-flight work, close the listener.
    Shutdown,
}

impl Request {
    /// Parses one request line. Errors are typed: non-JSON input is
    /// [`ErrorCode::ParseError`], structurally invalid requests are
    /// [`ErrorCode::BadRequest`], bad model/shard numbers are
    /// [`ErrorCode::InvalidParams`].
    pub fn parse(line: &str) -> Result<Request, ErrorResponse> {
        let value = JsonValue::parse(line)
            .map_err(|e| ErrorResponse::new(ErrorCode::ParseError, e.to_string()))?;
        Self::from_json(&value)
    }

    /// Interprets a parsed JSON object as a request.
    pub fn from_json(value: &JsonValue) -> Result<Request, ErrorResponse> {
        let bad = |msg: &str| ErrorResponse::new(ErrorCode::BadRequest, msg);
        let op = value
            .get("op")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| bad("missing string field \"op\""))?;
        let graph = || -> Result<String, ErrorResponse> {
            value
                .get("graph")
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| bad("missing string field \"graph\""))
        };
        match op {
            "load" => Ok(Request::Load {
                graph: graph()?,
                path: value
                    .get("path")
                    .and_then(JsonValue::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| bad("missing string field \"path\""))?,
            }),
            "solve" => Ok(Request::Solve {
                graph: graph()?,
                spec: QuerySpec::from_json(value)?,
            }),
            "enumerate" => Ok(Request::Enumerate {
                graph: graph()?,
                spec: EnumSpec::from_json(value)?,
            }),
            "update" => {
                let ops = value
                    .get("ops")
                    .and_then(JsonValue::as_array)
                    .ok_or_else(|| bad("missing array field \"ops\""))?;
                let ops = ops
                    .iter()
                    .map(|op| {
                        UpdateOp::from_json(op)
                            .map_err(|e| ErrorResponse::new(ErrorCode::InvalidParams, e))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Request::Update {
                    graph: graph()?,
                    ops,
                })
            }
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "ping" => Ok(Request::Ping {
                sleep_ms: value
                    .get("sleep_ms")
                    .map(|v| {
                        v.as_u64()
                            .ok_or_else(|| bad("\"sleep_ms\" must be a non-negative integer"))
                    })
                    .transpose()?
                    .unwrap_or(0),
            }),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(bad(&format!("unknown op `{other}`"))),
        }
    }

    /// Renders the request as one wire line.
    pub fn to_line(&self) -> String {
        self.to_json().to_string()
    }

    /// Renders the request as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        match self {
            Request::Load { graph, path } => JsonValue::object(vec![
                ("op", JsonValue::string("load")),
                ("graph", JsonValue::string(graph.clone())),
                ("path", JsonValue::string(path.clone())),
            ]),
            Request::Solve { graph, spec } => {
                let mut pairs = vec![
                    ("op", JsonValue::string("solve")),
                    ("graph", JsonValue::string(graph.clone())),
                ];
                model_fields(&mut pairs, spec.model);
                if let Some(top) = spec.top {
                    pairs.push(("top", JsonValue::from(top)));
                }
                budget_fields(
                    &mut pairs,
                    spec.time_limit_ms,
                    spec.node_limit,
                    spec.threads,
                );
                if let Some(n) = spec.portfolio {
                    pairs.push(("portfolio", JsonValue::from(n)));
                }
                if spec.anytime {
                    pairs.push(("anytime", JsonValue::from(true)));
                }
                shard_field(&mut pairs, spec.shard);
                JsonValue::object(pairs)
            }
            Request::Enumerate { graph, spec } => {
                let mut pairs = vec![
                    ("op", JsonValue::string("enumerate")),
                    ("graph", JsonValue::string(graph.clone())),
                ];
                model_fields(&mut pairs, spec.model);
                if spec.min_size > 0 {
                    pairs.push(("min_size", JsonValue::from(spec.min_size)));
                }
                if let Some(limit) = spec.limit {
                    pairs.push(("limit", JsonValue::from(limit)));
                }
                budget_fields(
                    &mut pairs,
                    spec.time_limit_ms,
                    spec.node_limit,
                    spec.threads,
                );
                shard_field(&mut pairs, spec.shard);
                JsonValue::object(pairs)
            }
            Request::Update { graph, ops } => JsonValue::object(vec![
                ("op", JsonValue::string("update")),
                ("graph", JsonValue::string(graph.clone())),
                (
                    "ops",
                    JsonValue::Array(ops.iter().map(UpdateOp::to_json).collect()),
                ),
            ]),
            Request::Stats => JsonValue::object(vec![("op", JsonValue::string("stats"))]),
            Request::Metrics => JsonValue::object(vec![("op", JsonValue::string("metrics"))]),
            Request::Ping { sleep_ms } => {
                let mut pairs = vec![("op", JsonValue::string("ping"))];
                if *sleep_ms > 0 {
                    pairs.push(("sleep_ms", JsonValue::from(*sleep_ms)));
                }
                JsonValue::object(pairs)
            }
            Request::Shutdown => JsonValue::object(vec![("op", JsonValue::string("shutdown"))]),
        }
    }
}

impl QuerySpec {
    /// A default (maximum-objective, unbudgeted, serial) spec for a model.
    pub fn new(model: FairnessModel) -> Self {
        Self {
            model,
            top: None,
            time_limit_ms: None,
            node_limit: None,
            threads: None,
            portfolio: None,
            anytime: false,
            shard: None,
        }
    }

    fn from_json(value: &JsonValue) -> Result<QuerySpec, ErrorResponse> {
        let (time_limit_ms, node_limit, threads) = budget_from_json(value)?;
        let portfolio = match opt_usize(value, "portfolio")? {
            Some(0) => {
                return Err(ErrorResponse::new(
                    ErrorCode::InvalidParams,
                    "\"portfolio\" must be >= 1",
                ))
            }
            other => other,
        };
        let anytime = match value.get("anytime") {
            None => false,
            Some(v) => v.as_bool().ok_or_else(|| {
                ErrorResponse::new(ErrorCode::InvalidParams, "\"anytime\" must be a boolean")
            })?,
        };
        if anytime && portfolio.is_none() {
            return Err(ErrorResponse::new(
                ErrorCode::InvalidParams,
                "\"anytime\" requires \"portfolio\"",
            ));
        }
        Ok(QuerySpec {
            model: model_from_json(value)?,
            top: opt_usize(value, "top")?,
            time_limit_ms,
            node_limit,
            threads,
            portfolio,
            anytime,
            shard: shard_from_json(value)?,
        })
    }

    /// Lowers the spec into a solver [`Query`] with the given cancel token, applying
    /// the daemon's default time limit when the client set none.
    pub fn to_query(&self, cancel: CancelToken, default_time_limit: Option<Duration>) -> Query {
        let mut query = Query::new(self.model).with_cancel(cancel);
        if let Some(top) = self.top {
            query = query.with_objective(Objective::TopK(top));
        }
        query = query.with_budget(build_budget(
            self.time_limit_ms,
            self.node_limit,
            default_time_limit,
        ));
        query.with_config(SearchConfig::default().with_threads(thread_count(self.threads)))
    }
}

impl EnumSpec {
    /// A default (unbounded, serial) spec for a model.
    pub fn new(model: FairnessModel) -> Self {
        Self {
            model,
            min_size: 0,
            limit: None,
            time_limit_ms: None,
            node_limit: None,
            threads: None,
            shard: None,
        }
    }

    fn from_json(value: &JsonValue) -> Result<EnumSpec, ErrorResponse> {
        let (time_limit_ms, node_limit, threads) = budget_from_json(value)?;
        Ok(EnumSpec {
            model: model_from_json(value)?,
            min_size: opt_usize(value, "min_size")?.unwrap_or(0),
            limit: opt_u64(value, "limit")?,
            time_limit_ms,
            node_limit,
            threads,
            shard: shard_from_json(value)?,
        })
    }

    /// Lowers the spec into a solver [`EnumQuery`] with the given cancel token.
    pub fn to_query(&self, cancel: CancelToken, default_time_limit: Option<Duration>) -> EnumQuery {
        EnumQuery::new(self.model)
            .with_min_size(self.min_size)
            .with_budget(build_budget(
                self.time_limit_ms,
                self.node_limit,
                default_time_limit,
            ))
            .with_cancel(cancel)
            .with_threads(thread_count(self.threads))
    }
}

fn thread_count(threads: Option<usize>) -> ThreadCount {
    match threads {
        None | Some(1) => ThreadCount::Serial,
        Some(0) => ThreadCount::Auto,
        Some(n) => ThreadCount::Fixed(n),
    }
}

fn build_budget(
    time_limit_ms: Option<u64>,
    node_limit: Option<u64>,
    default_time_limit: Option<Duration>,
) -> Budget {
    let mut budget = Budget::unlimited();
    match time_limit_ms {
        Some(ms) => budget = budget.with_time_limit(Duration::from_millis(ms)),
        None => {
            if let Some(limit) = default_time_limit {
                budget = budget.with_time_limit(limit);
            }
        }
    }
    if let Some(nodes) = node_limit {
        budget = budget.with_node_limit(nodes);
    }
    budget
}

type BudgetFields = (Option<u64>, Option<u64>, Option<usize>);

fn budget_from_json(value: &JsonValue) -> Result<BudgetFields, ErrorResponse> {
    Ok((
        opt_u64(value, "time_limit_ms")?,
        opt_u64(value, "node_limit")?,
        opt_usize(value, "threads")?,
    ))
}

fn model_from_json(value: &JsonValue) -> Result<FairnessModel, ErrorResponse> {
    let invalid = |msg: String| ErrorResponse::new(ErrorCode::InvalidParams, msg);
    let k = value
        .get("k")
        .ok_or_else(|| invalid("missing field \"k\"".into()))?
        .as_usize()
        .ok_or_else(|| invalid("\"k\" must be a non-negative integer".into()))?;
    let model = value
        .get("model")
        .map(|m| {
            m.as_str()
                .ok_or_else(|| invalid("\"model\" must be a string".into()))
        })
        .transpose()?
        .unwrap_or("relative");
    match model {
        "relative" => {
            let delta = opt_usize(value, "delta")?.unwrap_or(1);
            Ok(FairnessModel::Relative { k, delta })
        }
        "weak" => Ok(FairnessModel::Weak { k }),
        "strong" => Ok(FairnessModel::Strong { k }),
        other => Err(invalid(format!(
            "unknown model `{other}` (expected relative/weak/strong)"
        ))),
    }
}

fn model_fields(pairs: &mut Vec<(&str, JsonValue)>, model: FairnessModel) {
    match model {
        FairnessModel::Relative { k, delta } => {
            pairs.push(("model", JsonValue::string("relative")));
            pairs.push(("k", JsonValue::from(k)));
            pairs.push(("delta", JsonValue::from(delta)));
        }
        FairnessModel::Weak { k } => {
            pairs.push(("model", JsonValue::string("weak")));
            pairs.push(("k", JsonValue::from(k)));
        }
        FairnessModel::Strong { k } => {
            pairs.push(("model", JsonValue::string("strong")));
            pairs.push(("k", JsonValue::from(k)));
        }
    }
}

fn budget_fields(
    pairs: &mut Vec<(&str, JsonValue)>,
    time_limit_ms: Option<u64>,
    node_limit: Option<u64>,
    threads: Option<usize>,
) {
    if let Some(ms) = time_limit_ms {
        pairs.push(("time_limit_ms", JsonValue::from(ms)));
    }
    if let Some(nodes) = node_limit {
        pairs.push(("node_limit", JsonValue::from(nodes)));
    }
    if let Some(threads) = threads {
        pairs.push(("threads", JsonValue::from(threads)));
    }
}

fn shard_field(pairs: &mut Vec<(&str, JsonValue)>, shard: Option<Shard>) {
    if let Some(shard) = shard {
        pairs.push((
            "shard",
            JsonValue::object(vec![
                ("index", JsonValue::from(shard.index())),
                ("count", JsonValue::from(shard.count())),
            ]),
        ));
    }
}

fn shard_from_json(value: &JsonValue) -> Result<Option<Shard>, ErrorResponse> {
    let Some(shard) = value.get("shard") else {
        return Ok(None);
    };
    let invalid = || {
        ErrorResponse::new(
            ErrorCode::InvalidParams,
            "invalid \"shard\" (need {\"index\":i,\"count\":n} with i < n)",
        )
    };
    let index = shard
        .get("index")
        .and_then(JsonValue::as_usize)
        .ok_or_else(invalid)?;
    let count = shard
        .get("count")
        .and_then(JsonValue::as_usize)
        .ok_or_else(invalid)?;
    Shard::new(index, count).map(Some).ok_or_else(invalid)
}

fn opt_usize(value: &JsonValue, key: &str) -> Result<Option<usize>, ErrorResponse> {
    value
        .get(key)
        .map(|v| {
            v.as_usize().ok_or_else(|| {
                ErrorResponse::new(
                    ErrorCode::InvalidParams,
                    format!("\"{key}\" must be a non-negative integer"),
                )
            })
        })
        .transpose()
}

fn opt_u64(value: &JsonValue, key: &str) -> Result<Option<u64>, ErrorResponse> {
    value
        .get(key)
        .map(|v| {
            v.as_u64().ok_or_else(|| {
                ErrorResponse::new(
                    ErrorCode::InvalidParams,
                    format!("\"{key}\" must be a non-negative integer"),
                )
            })
        })
        .transpose()
}

/// The wire string of a solve termination.
pub fn termination_str(t: Termination) -> &'static str {
    match t {
        Termination::Optimal => "optimal",
        Termination::Infeasible => "infeasible",
        Termination::BudgetExhausted => "budget_exhausted",
        Termination::Cancelled => "cancelled",
    }
}

/// Parses a solve termination from its wire string.
pub fn termination_from_str(s: &str) -> Option<Termination> {
    match s {
        "optimal" => Some(Termination::Optimal),
        "infeasible" => Some(Termination::Infeasible),
        "budget_exhausted" => Some(Termination::BudgetExhausted),
        "cancelled" => Some(Termination::Cancelled),
        _ => None,
    }
}

/// The wire string of an enumeration termination.
pub fn enum_termination_str(t: EnumTermination) -> &'static str {
    match t {
        EnumTermination::Complete => "complete",
        EnumTermination::BudgetExhausted => "budget_exhausted",
        EnumTermination::Cancelled => "cancelled",
        EnumTermination::SinkStopped => "sink_stopped",
    }
}

/// Renders the terminal line of a successful `solve`.
pub fn solve_response(graph: &str, solution: &Solution) -> String {
    use std::fmt::Write as _;
    let mut line = String::with_capacity(160);
    let _ = write!(
        line,
        "{{\"ok\":true,\"op\":\"solve\",\"graph\":\"{}\",\"termination\":\"{}\",\"cliques\":[",
        escaped(graph),
        termination_str(solution.termination)
    );
    for (i, clique) in solution.cliques.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push_str(&clique_json(clique));
    }
    let opt = |v: Option<usize>| v.map_or_else(|| "null".to_string(), |n| n.to_string());
    let _ = write!(
        line,
        "],\"branches\":{},\"elapsed_us\":{},\"upper_bound\":{},\"optimality_gap\":{},\
         \"reduction_cache_hit\":{}}}",
        solution.stats.branches,
        solution.stats.elapsed_micros,
        opt(solution.upper_bound),
        opt(solution.optimality_gap()),
        solution.reduction_cache_hit
    );
    line
}

/// Renders one `enumerate` stream line.
pub fn clique_stream_line(clique: &FairClique) -> String {
    format!("{{\"clique\":{}}}", clique_json(clique))
}

/// Renders the terminal line of a successful `enumerate`.
pub fn enumerate_response(graph: &str, emitted: u64, termination: EnumTermination) -> String {
    format!(
        "{{\"ok\":true,\"op\":\"enumerate\",\"graph\":\"{}\",\"emitted\":{},\"termination\":\"{}\"}}",
        escaped(graph),
        emitted,
        enum_termination_str(termination)
    )
}

/// Whether a parsed response line is terminal (carries the `"ok"` verdict).
pub fn is_terminal(value: &JsonValue) -> bool {
    value.get("ok").is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfc_graph::Attribute;

    #[test]
    fn request_lines_round_trip() {
        let requests = [
            Request::Load {
                graph: "g".into(),
                path: "/tmp/g.graph".into(),
            },
            Request::Solve {
                graph: "g".into(),
                spec: QuerySpec {
                    model: FairnessModel::Relative { k: 3, delta: 1 },
                    top: Some(5),
                    time_limit_ms: Some(250),
                    node_limit: Some(1000),
                    threads: Some(2),
                    portfolio: Some(4),
                    anytime: true,
                    shard: Shard::new(1, 4),
                },
            },
            Request::Enumerate {
                graph: "g".into(),
                spec: EnumSpec {
                    model: FairnessModel::Weak { k: 2 },
                    min_size: 4,
                    limit: Some(10),
                    time_limit_ms: None,
                    node_limit: None,
                    threads: None,
                    shard: None,
                },
            },
            Request::Update {
                graph: "g".into(),
                ops: vec![
                    UpdateOp::InsertEdge { u: 1, v: 2 },
                    UpdateOp::InsertVertex { attr: Attribute::B },
                    UpdateOp::Commit,
                ],
            },
            Request::Stats,
            Request::Metrics,
            Request::Ping { sleep_ms: 0 },
            Request::Ping { sleep_ms: 50 },
            Request::Shutdown,
        ];
        for request in requests {
            let line = request.to_line();
            assert_eq!(Request::parse(&line).unwrap(), request, "{line}");
        }
    }

    #[test]
    fn default_model_is_relative_with_delta_one() {
        let parsed = Request::parse(r#"{"op":"solve","graph":"g","k":3}"#).unwrap();
        match parsed {
            Request::Solve { spec, .. } => {
                assert_eq!(spec.model, FairnessModel::Relative { k: 3, delta: 1 });
                assert_eq!(spec.top, None);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_errors_are_typed() {
        let cases = [
            ("not json at all", ErrorCode::ParseError),
            ("{\"graph\":\"g\"}", ErrorCode::BadRequest),
            ("{\"op\":\"fly\"}", ErrorCode::BadRequest),
            (
                "{\"op\":\"solve\",\"graph\":\"g\"}",
                ErrorCode::InvalidParams,
            ), // no k
            (
                "{\"op\":\"solve\",\"graph\":\"g\",\"k\":2,\"model\":\"qux\"}",
                ErrorCode::InvalidParams,
            ),
            (
                "{\"op\":\"solve\",\"graph\":\"g\",\"k\":2,\"shard\":{\"index\":2,\"count\":2}}",
                ErrorCode::InvalidParams,
            ),
            (
                "{\"op\":\"update\",\"graph\":\"g\",\"ops\":[{\"op\":\"warp\"}]}",
                ErrorCode::InvalidParams,
            ),
            ("{\"op\":\"solve\",\"k\":2}", ErrorCode::BadRequest), // no graph
        ];
        for (line, code) in cases {
            let err = Request::parse(line).unwrap_err();
            assert_eq!(err.code, code, "{line} → {err}");
        }
    }

    #[test]
    fn error_lines_escape_messages() {
        let err = ErrorResponse::new(ErrorCode::BadRequest, "tab\there \"quoted\"");
        let line = err.to_line();
        let value = JsonValue::parse(&line).unwrap();
        assert_eq!(value.get("ok").and_then(JsonValue::as_bool), Some(false));
        assert_eq!(
            value.get("error").and_then(JsonValue::as_str),
            Some("bad_request")
        );
        assert_eq!(
            value.get("message").and_then(JsonValue::as_str),
            Some("tab\there \"quoted\"")
        );
    }

    #[test]
    fn termination_strings_round_trip() {
        for t in [
            Termination::Optimal,
            Termination::Infeasible,
            Termination::BudgetExhausted,
            Termination::Cancelled,
        ] {
            assert_eq!(termination_from_str(termination_str(t)), Some(t));
        }
        assert_eq!(termination_from_str("victory"), None);
    }

    #[test]
    fn query_spec_lowers_budget_and_threads() {
        let spec = QuerySpec {
            model: FairnessModel::Relative { k: 2, delta: 1 },
            top: Some(3),
            time_limit_ms: Some(100),
            node_limit: Some(42),
            threads: Some(1),
            portfolio: None,
            anytime: false,
            shard: None,
        };
        let query = spec.to_query(CancelToken::new(), None);
        assert_eq!(query.objective, Objective::TopK(3));
        assert!(!query.budget.is_unlimited());
        // Daemon default applies only when the request sets no time limit.
        let spec = QuerySpec::new(FairnessModel::Weak { k: 2 });
        let query = spec.to_query(CancelToken::new(), Some(Duration::from_secs(1)));
        assert!(!query.budget.is_unlimited());
        let query = spec.to_query(CancelToken::new(), None);
        assert!(query.budget.is_unlimited());
    }
}
