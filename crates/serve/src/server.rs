//! The TCP daemon: `std::net::TcpListener`, one thread per connection, bounded
//! request lines, and admission control in front of the engine.
//!
//! The server is transport only — request semantics live behind the [`Handler`]
//! trait ([`LocalEngine`] in-process, or [`ShardedEngine`] when worker
//! processes are configured).

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::engine::{EngineConfig, LocalEngine};
use crate::executor::ShardedEngine;
use crate::protocol::{ErrorCode, ErrorResponse, Request, MAX_LINE_BYTES};
use crate::{Counters, Flow, Handler};

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Interface to bind.
    pub host: String,
    /// Port to bind (`0` = OS-assigned ephemeral port; read it back via
    /// [`Server::local_addr`]).
    pub port: u16,
    /// Number of `worker` child processes. `0` serves in-process; `n >= 1` spawns
    /// `n` replicas and shards every query across them.
    pub workers: usize,
    /// Command line (argv) that starts one worker process, e.g.
    /// `["maxfairclique", "worker"]`. Required when `workers > 0`.
    pub worker_cmd: Vec<String>,
    /// Maximum requests executing concurrently before new ones queue.
    pub max_active: usize,
    /// Maximum requests waiting for a slot before the daemon answers `overloaded`.
    pub max_queue: usize,
    /// Maximum request-line length in bytes; longer lines get a typed
    /// `line_too_long` error and the connection stays usable.
    pub max_line_bytes: usize,
    /// Engine tuning (cache capacity, default time limit).
    pub engine: EngineConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            host: "127.0.0.1".to_string(),
            port: 0,
            workers: 0,
            worker_cmd: Vec::new(),
            max_active: 4,
            max_queue: 16,
            max_line_bytes: MAX_LINE_BYTES,
            engine: EngineConfig::default(),
        }
    }
}

/// A counting semaphore with a bounded wait queue: up to `max_active` requests run
/// at once, up to `max_queue` wait for a slot, and everything beyond that is
/// rejected immediately with a typed `overloaded` error instead of stalling the
/// client.
#[derive(Debug)]
pub struct Admission {
    /// `(active, waiting)` under one lock.
    state: Mutex<(usize, usize)>,
    freed: Condvar,
    max_active: usize,
    max_queue: usize,
}

impl Admission {
    /// A gate admitting `max_active` concurrent requests with `max_queue` waiters.
    pub fn new(max_active: usize, max_queue: usize) -> Self {
        Self {
            state: Mutex::new((0, 0)),
            freed: Condvar::new(),
            max_active: max_active.max(1),
            max_queue,
        }
    }

    /// Acquires an execution slot, waiting in the bounded queue if necessary.
    /// Returns `None` when the queue is full — the caller must answer `overloaded`.
    pub fn try_acquire(&self) -> Option<AdmissionPermit<'_>> {
        let mut state = self.state.lock().expect("admission lock poisoned");
        if state.0 < self.max_active {
            state.0 += 1;
            return Some(AdmissionPermit { gate: self });
        }
        if state.1 >= self.max_queue {
            return None;
        }
        state.1 += 1;
        while state.0 >= self.max_active {
            state = self.freed.wait(state).expect("admission lock poisoned");
        }
        state.1 -= 1;
        state.0 += 1;
        Some(AdmissionPermit { gate: self })
    }

    /// Current `(active, waiting)` occupancy (for tests and stats).
    pub fn occupancy(&self) -> (usize, usize) {
        *self.state.lock().expect("admission lock poisoned")
    }
}

/// An execution slot; dropping it frees the slot and wakes one queued waiter.
#[derive(Debug)]
pub struct AdmissionPermit<'a> {
    gate: &'a Admission,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        let mut state = self.gate.state.lock().expect("admission lock poisoned");
        state.0 -= 1;
        drop(state);
        self.gate.freed.notify_one();
    }
}

/// Result of one bounded line read.
#[derive(Debug)]
pub enum ReadLine {
    /// A complete line (newline stripped, `\r` trimmed, lossy UTF-8).
    Line(String),
    /// The line exceeded the bound; it has been drained through its newline, so the
    /// stream is still in sync for the next request.
    TooLong,
    /// The peer closed the connection.
    Eof,
}

/// Reads one `\n`-terminated line of at most `max` bytes. Longer lines are consumed
/// (through the terminating newline) without buffering them, keeping both the
/// memory bound and the framing intact.
pub fn read_line_bounded(reader: &mut dyn BufRead, max: usize) -> io::Result<ReadLine> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let (found, used) = {
            let available = match reader.fill_buf() {
                Ok(available) => available,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if available.is_empty() {
                if buf.is_empty() {
                    return Ok(ReadLine::Eof);
                }
                // Final line without trailing newline.
                return Ok(finish_line(buf));
            }
            match available.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    if buf.len() + pos <= max {
                        buf.extend_from_slice(&available[..pos]);
                        (true, pos + 1)
                    } else {
                        reader.consume(pos + 1);
                        return Ok(ReadLine::TooLong);
                    }
                }
                None => {
                    if buf.len() + available.len() > max {
                        let used = available.len();
                        reader.consume(used);
                        drain_through_newline(reader)?;
                        return Ok(ReadLine::TooLong);
                    }
                    buf.extend_from_slice(available);
                    (false, available.len())
                }
            }
        };
        reader.consume(used);
        if found {
            return Ok(finish_line(buf));
        }
    }
}

fn finish_line(mut buf: Vec<u8>) -> ReadLine {
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    ReadLine::Line(String::from_utf8_lossy(&buf).into_owned())
}

fn drain_through_newline(reader: &mut dyn BufRead) -> io::Result<()> {
    loop {
        let (done, used) = {
            let available = match reader.fill_buf() {
                Ok(available) => available,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if available.is_empty() {
                return Ok(());
            }
            match available.iter().position(|&b| b == b'\n') {
                Some(pos) => (true, pos + 1),
                None => (false, available.len()),
            }
        };
        reader.consume(used);
        if done {
            return Ok(());
        }
    }
}

/// The `maxfaircliqued` daemon.
pub struct Server {
    listener: TcpListener,
    handler: Arc<dyn Handler>,
    admission: Arc<Admission>,
    counters: Arc<Counters>,
    max_line_bytes: usize,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Binds the listen socket and builds the engine (in-process for
    /// `config.workers == 0`, otherwise the multi-process shard executor — which
    /// spawns the worker children immediately).
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind((config.host.as_str(), config.port))?;
        let counters = Arc::new(Counters::default());
        let handler: Arc<dyn Handler> = if config.workers == 0 {
            Arc::new(LocalEngine::new(
                config.engine.clone(),
                Arc::clone(&counters),
            ))
        } else {
            Arc::new(ShardedEngine::spawn(
                &config.worker_cmd,
                config.workers,
                Arc::clone(&counters),
            )?)
        };
        Ok(Server {
            listener,
            handler,
            admission: Arc::new(Admission::new(config.max_active, config.max_queue)),
            counters,
            max_line_bytes: config.max_line_bytes,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (resolves port `0` to the actual ephemeral port).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The daemon-level request counters.
    pub fn counters(&self) -> Arc<Counters> {
        Arc::clone(&self.counters)
    }

    /// Serves connections until a client issues `shutdown`. In-flight queries are
    /// cancelled (returning verified best-so-far answers), every open connection is
    /// closed, and all connection threads are joined before returning.
    pub fn run(self) -> io::Result<()> {
        let addr = self.local_addr()?;
        let open: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));
        let next_conn = AtomicU64::new(0);
        let mut threads = Vec::new();
        for stream in self.listener.incoming() {
            if self.stop.load(Ordering::Relaxed) {
                break;
            }
            let stream = match stream {
                Ok(stream) => stream,
                Err(_) => continue,
            };
            let id = next_conn.fetch_add(1, Ordering::Relaxed);
            if let Ok(clone) = stream.try_clone() {
                open.lock()
                    .expect("connection registry poisoned")
                    .insert(id, clone);
            }
            let handler = Arc::clone(&self.handler);
            let admission = Arc::clone(&self.admission);
            let counters = Arc::clone(&self.counters);
            let stop = Arc::clone(&self.stop);
            let open_registry = Arc::clone(&open);
            let max_line = self.max_line_bytes;
            threads.push(std::thread::spawn(move || {
                let _ = serve_connection(stream, &*handler, &admission, &counters, &stop, max_line);
                open_registry
                    .lock()
                    .expect("connection registry poisoned")
                    .remove(&id);
                if stop.load(Ordering::Relaxed) {
                    // Wake the acceptor so the listener loop observes the stop flag.
                    let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(500));
                }
            }));
        }
        // Unblock every connection thread still waiting on a read.
        for (_, stream) in open.lock().expect("connection registry poisoned").drain() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        for thread in threads {
            let _ = thread.join();
        }
        Ok(())
    }
}

/// Whether a request must pass admission control. `stats`, `metrics` and
/// `shutdown` bypass the gate (they must work on a saturated daemon); malformed
/// lines are answered with cheap typed errors without occupying a slot.
fn needs_admission(line: &str) -> bool {
    !matches!(
        Request::parse(line),
        Err(_) | Ok(Request::Stats) | Ok(Request::Metrics) | Ok(Request::Shutdown)
    )
}

fn serve_connection(
    stream: TcpStream,
    handler: &dyn Handler,
    admission: &Admission,
    counters: &Counters,
    stop: &AtomicBool,
    max_line_bytes: usize,
) -> io::Result<()> {
    // One `write_all` per response line: `writeln!` straight to the socket would
    // split payload and newline into separate segments, and the Nagle /
    // delayed-ACK interaction turns every request into a ~40 ms stall.
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut send = move |response: &str| -> io::Result<()> {
        let mut buf = String::with_capacity(response.len() + 1);
        buf.push_str(response);
        buf.push('\n');
        writer.write_all(buf.as_bytes())?;
        writer.flush()
    };
    loop {
        let line = match read_line_bounded(&mut reader, max_line_bytes)? {
            ReadLine::Eof => return Ok(()),
            ReadLine::TooLong => {
                Counters::bump(&counters.requests);
                Counters::bump(&counters.errors);
                let error = ErrorResponse::new(
                    ErrorCode::LineTooLong,
                    format!("request line exceeds {max_line_bytes} bytes"),
                );
                send(&error.to_line())?;
                continue;
            }
            ReadLine::Line(line) => line,
        };
        if line.trim().is_empty() {
            continue;
        }
        let permit = if needs_admission(&line) {
            match admission.try_acquire() {
                Some(permit) => Some(permit),
                None => {
                    Counters::bump(&counters.requests);
                    Counters::bump(&counters.errors);
                    Counters::bump(&counters.overloaded);
                    let error = ErrorResponse::new(
                        ErrorCode::Overloaded,
                        "too many requests in flight; retry later",
                    );
                    send(&error.to_line())?;
                    continue;
                }
            }
        } else {
            None
        };
        let flow = handler.handle(&line, &mut send);
        drop(permit);
        match flow? {
            Flow::Continue => {}
            Flow::Shutdown => {
                stop.store(true, Ordering::Relaxed);
                return Ok(());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn read_all(input: &[u8], max: usize) -> Vec<String> {
        let mut reader = BufReader::with_capacity(8, Cursor::new(input.to_vec()));
        let mut out = Vec::new();
        loop {
            match read_line_bounded(&mut reader, max).unwrap() {
                ReadLine::Eof => return out,
                ReadLine::TooLong => out.push("<too-long>".to_string()),
                ReadLine::Line(line) => out.push(line),
            }
        }
    }

    #[test]
    fn bounded_reader_frames_lines() {
        assert_eq!(read_all(b"a\nbb\r\nccc", 10), ["a", "bb", "ccc"]);
        assert_eq!(read_all(b"", 10), Vec::<String>::new());
        assert_eq!(read_all(b"\n\n", 10), ["", ""]);
    }

    #[test]
    fn bounded_reader_drains_oversized_lines_and_stays_in_sync() {
        // A 20-byte line against a 5-byte bound, followed by a healthy line; the
        // tiny 8-byte BufReader capacity forces the multi-chunk drain path.
        let input = b"aaaaaaaaaaaaaaaaaaaa\nok\n";
        assert_eq!(read_all(input, 5), ["<too-long>", "ok"]);
        // Oversized final line without a trailing newline.
        assert_eq!(read_all(b"bbbbbbbbbbbbbbbb", 5), ["<too-long>"]);
        // Boundary: exactly `max` bytes is accepted.
        assert_eq!(read_all(b"12345\n", 5), ["12345"]);
        assert_eq!(read_all(b"123456\n", 5), ["<too-long>"]);
    }

    #[test]
    fn admission_bounds_active_and_queue() {
        let gate = Admission::new(1, 0);
        let permit = gate.try_acquire().expect("first slot free");
        assert!(
            gate.try_acquire().is_none(),
            "queue of 0 rejects immediately"
        );
        drop(permit);
        assert!(gate.try_acquire().is_some());
    }

    #[test]
    fn admission_queue_hands_over_freed_slots() {
        let gate = Arc::new(Admission::new(1, 4));
        let permit = gate.try_acquire().unwrap();
        let waiter = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                let permit = gate.try_acquire();
                permit.is_some()
            })
        };
        // Let the waiter enqueue, then free the slot.
        while gate.occupancy().1 == 0 {
            std::thread::yield_now();
        }
        drop(permit);
        assert!(waiter.join().unwrap());
        assert_eq!(gate.occupancy(), (0, 0));
    }

    #[test]
    fn stats_metrics_and_shutdown_bypass_admission() {
        assert!(needs_admission(r#"{"op":"solve","graph":"g","k":2}"#));
        assert!(needs_admission(r#"{"op":"ping","sleep_ms":5}"#));
        assert!(!needs_admission(r#"{"op":"stats"}"#));
        assert!(!needs_admission(r#"{"op":"metrics"}"#));
        assert!(!needs_admission(r#"{"op":"shutdown"}"#));
        assert!(!needs_admission("not json"));
    }
}
