//! The worker-process entry point: a [`LocalEngine`] speaking the line protocol
//! over stdin/stdout, driven by the parent daemon's
//! [`ShardedEngine`](crate::ShardedEngine).
//!
//! Workers are protocol-identical to the daemon — the executor literally forwards
//! request lines (with a `shard` injected into queries) — so every differential
//! guarantee of the in-process engine carries over to the multi-process path.

use std::io::{self, BufReader, Write};
use std::sync::Arc;

use crate::engine::{EngineConfig, LocalEngine};
use crate::protocol::{ErrorCode, ErrorResponse, MAX_LINE_BYTES};
use crate::server::{read_line_bounded, ReadLine};
use crate::{Counters, Flow, Handler};

/// Serves requests from stdin to stdout until EOF or `shutdown`. Returns the
/// process exit code.
///
/// Every emitted line is flushed immediately: the parent reads responses
/// synchronously over a pipe, so a buffered terminal line would deadlock the pair.
pub fn run_worker(config: EngineConfig) -> i32 {
    let engine = LocalEngine::new(config, Arc::new(Counters::default()));
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut reader = BufReader::new(stdin.lock());
    let mut writer = stdout.lock();
    loop {
        let line = match read_line_bounded(&mut reader, MAX_LINE_BYTES) {
            Ok(ReadLine::Eof) => return 0,
            Ok(ReadLine::TooLong) => {
                let error = ErrorResponse::new(
                    ErrorCode::LineTooLong,
                    format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                );
                if writeln!(writer, "{}", error.to_line())
                    .and_then(|()| writer.flush())
                    .is_err()
                {
                    return 1;
                }
                continue;
            }
            Ok(ReadLine::Line(line)) => line,
            Err(_) => return 1,
        };
        if line.trim().is_empty() {
            continue;
        }
        let mut emit = |response: &str| -> io::Result<()> {
            writeln!(writer, "{response}")?;
            writer.flush()
        };
        match engine.handle(&line, &mut emit) {
            Ok(Flow::Continue) => {}
            Ok(Flow::Shutdown) => return 0,
            Err(_) => return 1,
        }
    }
}
