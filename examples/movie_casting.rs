//! Casting a production team that mixes senior and junior artists (the IMDB case study
//! of Fig. 10(d)), and comparing the heuristic against the exact search.
//!
//! Run with:
//! ```text
//! cargo run --release -p rfc-core --example movie_casting
//! ```

use rfc_core::baseline::bron_kerbosch_max_fair_clique;
use rfc_core::prelude::*;
use rfc_datasets::case_study::CaseStudy;

fn main() {
    let case = CaseStudy::Imdb.generate();
    let graph = &case.graph;
    println!(
        "IMDB collaboration analog: {} artists, {} collaborations",
        graph.num_vertices(),
        graph.num_edges()
    );

    let params = FairCliqueParams::new(case.default_k, case.default_delta).unwrap();

    // Three ways to answer the same question.
    let heuristic = heur_rfc(graph, params, &HeuristicConfig::default());
    let exact = max_fair_clique(graph, params, &SearchConfig::default());
    let baseline = bron_kerbosch_max_fair_clique(graph, params);

    let h_size = heuristic.best.as_ref().map(|c| c.size()).unwrap_or(0);
    let e_size = exact.best.as_ref().map(|c| c.size()).unwrap_or(0);
    let b_size = baseline.as_ref().map(|c| c.size()).unwrap_or(0);
    println!("HeurRFC (linear time) team size:        {h_size}");
    println!("MaxRFC (branch and bound) team size:    {e_size}");
    println!("Bron–Kerbosch baseline team size:       {b_size}");
    assert_eq!(e_size, b_size, "the two exact methods must agree");
    assert!(h_size <= e_size);

    if let Some(team) = &exact.best {
        println!(
            "\nproduction team ({} senior, {} junior):",
            team.counts.a(),
            team.counts.b()
        );
        for &artist in &team.vertices {
            println!(
                "  - {} [{}]",
                case.label(artist),
                case.attribute_name(artist)
            );
        }
    }

    println!(
        "\nsearch visited {} nodes; the reduction kept {} of {} edges",
        exact.stats.branches,
        exact.stats.reduction.final_edges(),
        exact.stats.reduction.original_edges
    );
}
