//! Quickstart: build a small attributed graph, search for its maximum relative fair
//! clique, and inspect the result.
//!
//! Run with:
//! ```text
//! cargo run --release -p rfc-core --example quickstart
//! ```

use rfc_core::prelude::*;
use rfc_core::verify;
use rfc_graph::fixtures;

fn main() {
    // The running example of the paper (Fig. 1): 15 vertices, an 8-clique with five
    // `a`-vertices and three `b`-vertices on one side, a sparse structure on the other.
    let graph = fixtures::fig1_graph();
    println!("graph: {}", graph.stats());

    // Find the maximum relative fair clique with k = 3 and δ = 1: at least three
    // vertices of each attribute, and the two attribute counts may differ by at most 1.
    let params = FairCliqueParams::new(3, 1).expect("k must be positive");
    let outcome = max_fair_clique(&graph, params, &SearchConfig::default());

    match &outcome.best {
        Some(clique) => {
            println!(
                "maximum relative fair clique {} has {} vertices: {:?}",
                params,
                clique.size(),
                clique.vertices
            );
            println!("attribute counts: {}", clique.counts);
            assert!(verify::is_relative_fair_clique(
                &graph,
                &clique.vertices,
                params
            ));
        }
        None => println!("no relative fair clique exists for {params}"),
    }

    // The search statistics show what the reductions and bounds did.
    let stats = &outcome.stats;
    println!(
        "reduction: {} -> {} edges in {} stages",
        stats.reduction.original_edges,
        stats.reduction.final_edges(),
        stats.reduction.stages.len()
    );
    println!(
        "search: {} branches, {} bound prunes, {} feasibility prunes, {} µs total",
        stats.branches, stats.bound_prunes, stats.feasibility_prunes, stats.elapsed_micros
    );

    // Varying δ changes the answer: with δ = 2 the whole 8-clique becomes fair.
    let relaxed = FairCliqueParams::new(3, 2).unwrap();
    let bigger = max_fair_clique(&graph, relaxed, &SearchConfig::default());
    println!(
        "with {relaxed} the maximum fair clique has {} vertices",
        bigger.best.map(|c| c.size()).unwrap_or(0)
    );
}
