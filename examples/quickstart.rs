//! Quickstart: build a small attributed graph, construct a reusable [`RfcSolver`],
//! and serve several fairness queries off one preprocessing pass.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use rfc_core::prelude::*;
use rfc_core::verify;
use rfc_graph::fixtures;

fn main() {
    // The running example of the paper (Fig. 1): 15 vertices, an 8-clique with five
    // `a`-vertices and three `b`-vertices on one side, a sparse structure on the other.
    let graph = fixtures::fig1_graph();
    println!("graph: {}", graph.stats());

    // Build the solver once: it owns the graph and caches the query-independent
    // preprocessing (coloring, degeneracy, and — lazily — reduced graphs per k).
    let solver = RfcSolver::new(graph);

    // Query 1 — the relative model with k = 3 and δ = 1: at least three vertices of
    // each attribute, counts differing by at most 1.
    let model = FairnessModel::Relative { k: 3, delta: 1 };
    let solution = solver.solve(&Query::new(model)).expect("valid query");
    match solution.best() {
        Some(clique) => {
            println!(
                "maximum {model} fair clique has {} vertices: {:?}",
                clique.size(),
                clique.vertices
            );
            println!("attribute counts: {}", clique.counts);
            assert_eq!(solution.termination, Termination::Optimal);
            assert!(verify::is_fair_clique_under(
                solver.graph(),
                &clique.vertices,
                model
            ));
        }
        None => println!("no fair clique exists under {model} fairness"),
    }

    // The search statistics show what the reductions and bounds did.
    let stats = &solution.stats;
    println!(
        "reduction: {} -> {} edges in {} stages",
        stats.reduction.original_edges,
        stats.reduction.final_edges(),
        stats.reduction.stages.len()
    );
    println!(
        "search: {} branches, {} bound prunes, {} feasibility prunes, {} µs total",
        stats.branches, stats.bound_prunes, stats.feasibility_prunes, stats.elapsed_micros
    );

    // Queries 2–4 — other fairness models and a relaxed δ reuse the cached
    // preprocessing (every query below shares k = 3 with the first one).
    for fairness in [
        FairnessModel::Weak { k: 3 },
        FairnessModel::Strong { k: 3 },
        FairnessModel::Relative { k: 3, delta: 2 },
    ] {
        let solution = solver.solve(&Query::new(fairness)).expect("valid query");
        println!(
            "maximum {fairness} fair clique has {} vertices (cache hit: {})",
            solution.best().map(FairClique::size).unwrap_or(0),
            solution.reduction_cache_hit
        );
    }
    println!(
        "4 queries, {} preprocessing pass(es)",
        solver.preprocessing_runs()
    );

    // Budgets make the solver service-friendly: a node-limited query returns the
    // verified best-so-far instead of running to completion. (A zero budget stops the
    // search before its first node, so the answer is the heuristic warm start.)
    let budgeted = solver
        .solve(
            &Query::new(FairnessModel::Relative { k: 3, delta: 1 })
                .with_budget(Budget::unlimited().with_node_limit(0)),
        )
        .expect("valid query");
    println!(
        "node-limited query: termination {:?}, best-so-far {} vertices",
        budgeted.termination,
        budgeted.best().map(FairClique::size).unwrap_or(0)
    );
}
