//! Watch the graph-reduction pipeline shrink a large-ish network before the search runs
//! (the machinery behind Fig. 4 / Fig. 5 of the paper).
//!
//! Run with:
//! ```text
//! cargo run --release -p rfc-core --example reduction_pipeline
//! ```

use rfc_core::prelude::*;
use rfc_core::reduction::apply_reductions;
use rfc_datasets::PaperDataset;

fn main() {
    let dataset = PaperDataset::Aminer;
    let spec = dataset.spec();
    let graph = spec.generate();
    println!(
        "{} analog: n = {}, m = {} (original dataset: n = {}, m = {})",
        spec.name,
        graph.num_vertices(),
        graph.num_edges(),
        spec.paper_vertices,
        spec.paper_edges
    );

    println!(
        "\nper-stage reduction sizes while varying k (δ = {}):",
        spec.default_delta
    );
    println!(
        "{:>4} {:>22} {:>22} {:>22}",
        "k", "EnColorfulCore (V/E)", "ColorfulSup (V/E)", "EnColorfulSup (V/E)"
    );
    for k in spec.k_values() {
        let params = FairCliqueParams::new(k, spec.default_delta).unwrap();
        let (_, stats) = apply_reductions(&graph, params, &ReductionConfig::default());
        let cells: Vec<String> = stats
            .stages
            .iter()
            .map(|s| format!("{}/{}", s.vertices, s.edges))
            .collect();
        println!(
            "{:>4} {:>22} {:>22} {:>22}",
            k,
            cells.first().cloned().unwrap_or_default(),
            cells.get(1).cloned().unwrap_or_default(),
            cells.get(2).cloned().unwrap_or_default()
        );
    }

    // The reduced graph is what the branch-and-bound search actually explores; show how
    // much smaller it is at the default parameters.
    let params = FairCliqueParams::new(spec.default_k, spec.default_delta).unwrap();
    let (reduced, stats) = apply_reductions(&graph, params, &ReductionConfig::default());
    println!(
        "\nat the default parameters {params}: {} / {} edges survive ({:.2}%)",
        stats.final_edges(),
        stats.original_edges,
        100.0 * stats.final_edges() as f64 / stats.original_edges.max(1) as f64
    );

    let outcome = max_fair_clique(&graph, params, &SearchConfig::default());
    println!(
        "maximum fair clique on the full graph: {} vertices ({} branch-and-bound nodes)",
        outcome.best.as_ref().map(|c| c.size()).unwrap_or(0),
        outcome.stats.branches
    );
    // Sanity: the search on the pre-reduced graph gives the same answer.
    let outcome2 = max_fair_clique(&reduced, params, &SearchConfig::default());
    assert_eq!(
        outcome.best.as_ref().map(|c| c.size()),
        outcome2.best.as_ref().map(|c| c.size())
    );
}
