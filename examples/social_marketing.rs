//! Sports-marketing scenario on the NBA relationship network (Fig. 10(c) analog).
//!
//! A brand wants the largest densely-connected group of star players mixing local
//! (U.S.) and overseas athletes, so a campaign reaches both domestic and international
//! audiences. That is exactly a maximum relative fair clique with nationality as the
//! attribute.
//!
//! The example also shows how the parameters shape the answer: sweeping `δ` trades
//! balance for size.
//!
//! Run with:
//! ```text
//! cargo run --release -p rfc-core --example social_marketing
//! ```

use rfc_core::prelude::*;
use rfc_datasets::case_study::CaseStudy;

fn main() {
    let case = CaseStudy::Nba.generate();
    let graph = &case.graph;
    println!(
        "NBA relationship analog: {} players, {} relationships",
        graph.num_vertices(),
        graph.num_edges()
    );

    let params = FairCliqueParams::new(case.default_k, case.default_delta).unwrap();
    let outcome = max_fair_clique(graph, params, &SearchConfig::default());
    let team = outcome.best.expect("a balanced star group exists");
    println!(
        "best marketing group for {params}: {} players ({} U.S., {} overseas)",
        team.size(),
        team.counts.a(),
        team.counts.b()
    );
    for &p in &team.vertices {
        println!("  - {} [{}]", case.label(p), case.attribute_name(p));
    }

    // How does the balance requirement affect the achievable group size?
    println!("\nδ sweep (k = {}):", case.default_k);
    for delta in 0..=4usize {
        let params = FairCliqueParams::new(case.default_k, delta).unwrap();
        let size = max_fair_clique(graph, params, &SearchConfig::default())
            .best
            .map(|c| c.size())
            .unwrap_or(0);
        println!("  δ = {delta}: best group size = {size}");
    }

    // And the k requirement?
    println!("\nk sweep (δ = {}):", case.default_delta);
    for k in 2..=6usize {
        let params = FairCliqueParams::new(k, case.default_delta).unwrap();
        let size = max_fair_clique(graph, params, &SearchConfig::default())
            .best
            .map(|c| c.size())
            .unwrap_or(0);
        println!("  k = {k}: best group size = {size}");
    }
}
