//! Team formation on a collaboration network (the DBAI case study of Section VI-C).
//!
//! A research project needs the largest possible tightly-knit team that balances
//! database (DB) and artificial-intelligence (AI) expertise: everyone must have worked
//! with everyone else, there must be at least `k` researchers from each area, and the
//! two areas may differ by at most `δ` people.
//!
//! Run with:
//! ```text
//! cargo run --release -p rfc-core --example team_formation
//! ```

use rfc_core::prelude::*;
use rfc_core::verify;
use rfc_datasets::case_study::CaseStudy;

fn main() {
    let case = CaseStudy::Dbai.generate();
    let graph = &case.graph;
    println!(
        "DBAI co-authorship analog: {} researchers, {} collaborations",
        graph.num_vertices(),
        graph.num_edges()
    );

    let params = FairCliqueParams::new(case.default_k, case.default_delta).unwrap();
    println!(
        "looking for the largest team with ≥{} researchers per area and imbalance ≤{} …",
        params.k, params.delta
    );

    // First ask the linear-time heuristic for a quick answer…
    let heuristic = heur_rfc(graph, params, &HeuristicConfig::default());
    if let Some(team) = &heuristic.best {
        println!(
            "heuristic (HeurRFC) proposes a team of {} (upper bound {})",
            team.size(),
            heuristic.upper_bound
        );
    }

    // …then run the exact branch-and-bound search.
    let outcome = max_fair_clique(graph, params, &SearchConfig::default());
    let team = outcome
        .best
        .expect("the collaboration network contains a balanced team");
    println!(
        "exact maximum balanced team: {} researchers ({} DB, {} AI), found in {} µs",
        team.size(),
        team.counts.a(),
        team.counts.b(),
        outcome.stats.elapsed_micros
    );
    for &member in &team.vertices {
        println!(
            "  - {} [{}]",
            case.label(member),
            case.attribute_name(member)
        );
    }
    assert!(verify::is_relative_fair_clique(
        graph,
        &team.vertices,
        params
    ));

    // The planted ground-truth team should be exactly what the search recovers (or an
    // equally large alternative).
    println!(
        "planted ground-truth team size: {} (search found {})",
        case.planted_team.len(),
        team.size()
    );
}
