//! Validates a `--trace FILE` JSONL span log and reports how much of the
//! longest root span its children account for.
//!
//! ```text
//! cargo run --example trace_check -- trace.jsonl [MIN_COVERAGE_PERCENT]
//! ```
//!
//! Checks, exiting non-zero on the first violation:
//!
//! * every line parses as JSON and is an `open` or `close` event with the
//!   mandatory fields (`id`, `thread`, `name`, `t_us`; `dur_us` on close);
//! * every span that opens also closes (and vice versa), with matching names;
//! * every `parent` reference points at a span that was opened;
//! * no span's children (summed `dur_us`) exceed the span's own duration.
//!
//! With a `MIN_COVERAGE_PERCENT` argument it additionally requires the direct
//! children of the longest root span to cover at least that percentage of the
//! root's duration — the "does the trace account for the wall time?" check.

use std::collections::HashMap;
use std::process::ExitCode;

use rfc_suite::graph::json::JsonValue;

fn fail(message: String) -> ExitCode {
    eprintln!("trace_check: {message}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        return fail("usage: trace_check FILE.jsonl [MIN_COVERAGE_PERCENT]".to_string());
    };
    let min_coverage: Option<f64> = match args.next() {
        None => None,
        Some(raw) => match raw.parse() {
            Ok(p) => Some(p),
            Err(_) => return fail(format!("invalid MIN_COVERAGE_PERCENT `{raw}`")),
        },
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => return fail(format!("{path}: {e}")),
    };

    // id -> (name, parent); filled by opens, consumed by closes.
    let mut open_spans: HashMap<u64, (String, Option<u64>)> = HashMap::new();
    // Closed spans: id -> (name, parent, dur_us).
    let mut closed: HashMap<u64, (String, Option<u64>, u64)> = HashMap::new();
    let mut events = 0u64;
    let mut threads: Vec<u64> = Vec::new();

    for (line_no, line) in text.lines().enumerate() {
        let line_no = line_no + 1;
        let v = match JsonValue::parse(line) {
            Ok(v) => v,
            Err(e) => return fail(format!("{path}:{line_no}: unparseable: {e}")),
        };
        let field_u64 = |name: &str| v.get(name).and_then(JsonValue::as_u64);
        let (Some(id), Some(thread), Some(name), Some(_t_us)) = (
            field_u64("id"),
            field_u64("thread"),
            v.get("name").and_then(JsonValue::as_str),
            field_u64("t_us"),
        ) else {
            return fail(format!("{path}:{line_no}: missing mandatory fields"));
        };
        let parent = field_u64("parent");
        if !threads.contains(&thread) {
            threads.push(thread);
        }
        events += 1;
        match v.get("ev").and_then(JsonValue::as_str) {
            Some("open") => {
                if let Some(p) = parent {
                    if !open_spans.contains_key(&p) && !closed.contains_key(&p) {
                        return fail(format!(
                            "{path}:{line_no}: span #{id} has unknown parent #{p}"
                        ));
                    }
                }
                if open_spans.insert(id, (name.to_string(), parent)).is_some() {
                    return fail(format!("{path}:{line_no}: span #{id} opened twice"));
                }
            }
            Some("close") => {
                let Some(dur) = field_u64("dur_us") else {
                    return fail(format!("{path}:{line_no}: close without dur_us"));
                };
                match open_spans.remove(&id) {
                    None => return fail(format!("{path}:{line_no}: close without open (#{id})")),
                    Some((open_name, open_parent)) => {
                        if open_name != name || open_parent != parent {
                            return fail(format!(
                                "{path}:{line_no}: close #{id} does not match its open"
                            ));
                        }
                    }
                }
                closed.insert(id, (name.to_string(), parent, dur));
            }
            other => return fail(format!("{path}:{line_no}: unknown event {other:?}")),
        }
    }

    if let Some((id, (name, _))) = open_spans.iter().next() {
        return fail(format!("span {name} #{id} was never closed"));
    }
    if closed.is_empty() {
        return fail(format!("{path}: no spans recorded"));
    }

    // Children must fit inside their parents.
    let mut child_sum: HashMap<u64, u64> = HashMap::new();
    for (_, (_, parent, dur)) in closed.iter() {
        if let Some(p) = parent {
            *child_sum.entry(*p).or_default() += dur;
        }
    }
    for (id, sum) in &child_sum {
        let (name, _, dur) = &closed[id];
        if sum > dur {
            return fail(format!(
                "children of {name} #{id} ({sum} µs) exceed the span itself ({dur} µs)"
            ));
        }
    }

    // Coverage: direct children of the longest root span vs the root itself.
    let (root_id, (root_name, _, root_dur)) = closed
        .iter()
        .filter(|(_, (_, parent, _))| parent.is_none())
        .max_by_key(|(_, (_, _, dur))| *dur)
        .expect("at least one root span");
    let covered = child_sum.get(root_id).copied().unwrap_or(0);
    let coverage = if *root_dur == 0 {
        100.0
    } else {
        100.0 * covered as f64 / *root_dur as f64
    };

    println!(
        "{path}: {events} events, {} spans, {} threads; \
         root `{root_name}` {root_dur} µs, children cover {coverage:.1}%",
        closed.len(),
        threads.len()
    );
    if let Some(min) = min_coverage {
        if coverage < min {
            return fail(format!(
                "coverage {coverage:.1}% is below the required {min}%"
            ));
        }
    }
    ExitCode::SUCCESS
}
