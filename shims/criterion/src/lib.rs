//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the 0.5-era API subset this workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros — with a simple wall-clock
//! measurement loop instead of criterion's statistical machinery: each
//! benchmark runs one warm-up iteration, then `sample_size` timed iterations
//! (capped by a per-benchmark time budget), and prints min / mean / max
//! iteration time. Good enough to spot order-of-magnitude regressions; swap in
//! the real crate (root `[workspace.dependencies]`) for publication-grade
//! statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Per-benchmark wall-clock budget; sampling stops early once exceeded.
const TIME_BUDGET: Duration = Duration::from_secs(3);

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level harness handle, passed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Accepted for compatibility with `criterion_group!`'s expansion; CLI
    /// arguments are ignored by this shim.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, 100, f);
        self
    }

    /// No-op (the real crate prints a summary here).
    pub fn final_summary(&mut self) {}
}

/// A named benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/parameter`.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (prints nothing; per-benchmark lines were already
    /// emitted).
    pub fn finish(self) {}
}

/// Timing loop handle handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Runs `routine` once to warm up, then repeatedly, recording one sample
    /// per iteration until the sample target or the time budget is reached.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        let started = Instant::now();
        self.samples.clear();
        while self.samples.len() < self.target_samples && started.elapsed() < TIME_BUDGET {
            let sample_started = Instant::now();
            black_box(routine());
            self.samples.push(sample_started.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        target_samples: sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:60} (no samples recorded)");
        return;
    }
    let min = bencher.samples.iter().min().unwrap();
    let max = bencher.samples.iter().max().unwrap();
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    println!(
        "{label:60} [{} {} {}] ({} samples)",
        format_duration(*min),
        format_duration(mean),
        format_duration(*max),
        bencher.samples.len(),
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions into a group runner (mirrors
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group (mirrors
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
