//! [`any`] and the [`Arbitrary`] trait (mirrors `proptest::arbitrary`).

use std::fmt::Debug;
use std::marker::PhantomData;

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical uniform strategy.
pub trait Arbitrary: Sized + Debug {
    /// Generates one uniformly random value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen::<$t>()
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<A>(PhantomData<A>);

/// Returns the canonical strategy for `A` (e.g. `any::<bool>()`).
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}
