//! Collection strategies (mirrors `proptest::collection`).

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length specification for [`vec()`]: an exact size or a size range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max_inclusive: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        SizeRange {
            min: range.start,
            max_inclusive: range.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty size range");
        SizeRange {
            min: *range.start(),
            max_inclusive: *range.end(),
        }
    }
}

/// The strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates `Vec`s whose elements come from `element` and whose length is
/// drawn from `size` (an exact `usize` or a range).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.min == self.size.max_inclusive {
            self.size.min
        } else {
            rng.gen_range(self.size.min..=self.size.max_inclusive)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
