//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, implementing the API subset this workspace's property tests use:
//!
//! * the [`Strategy`] trait with [`Strategy::prop_map`] /
//!   [`Strategy::prop_flat_map`], plus strategies for integer ranges, tuples,
//!   [`collection::vec`], [`bool::weighted`] and [`any`],
//! * the [`proptest!`] macro with `#![proptest_config(..)]`, and
//!   [`prop_assert!`] / [`prop_assert_eq!`],
//! * a deterministic runner ([`test_runner::ProptestConfig`]).
//!
//! Unlike the real crate there is **no shrinking**: a failing case reports its
//! generated inputs verbatim. Runs are reproducible by construction — the RNG
//! seed is a fixed per-test constant unless overridden with `PROPTEST_SEED`,
//! and the case count honours `PROPTEST_CASES` (see [`test_runner`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use arbitrary::{any, Arbitrary};
pub use strategy::Strategy;

/// Strategies for `bool` (mirrors `proptest::bool`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A strategy producing `true` with fixed probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Weighted {
        probability: f64,
    }

    /// Generates `true` with probability `probability`.
    pub fn weighted(probability: f64) -> Weighted {
        assert!(
            (0.0..=1.0).contains(&probability),
            "probability {probability} is not in [0, 1]"
        );
        Weighted { probability }
    }

    impl Strategy for Weighted {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool(self.probability)
        }
    }
}

/// Everything a property test typically imports (mirrors
/// `proptest::prelude`).
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a [`proptest!`] body, reporting the generated
/// inputs on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("prop_assert!({}) failed", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!($($fmt)+);
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            panic!(
                "prop_assert_eq!({}, {}) failed:\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), left, right
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            panic!($($fmt)+);
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            panic!(
                "prop_assert_ne!({}, {}) failed: both are {:?}",
                stringify!($left),
                stringify!($right),
                left
            );
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }` item
/// expands to a `#[test]` that runs `body` over `cases` generated inputs.
///
/// Failures re-raise the original panic after printing the generated inputs
/// (this shim does not shrink).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let cases = $crate::test_runner::resolved_cases(&config);
                let mut rng = $crate::test_runner::deterministic_rng(stringify!($name));
                for case_index in 0..cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                    )+
                    let rendered_inputs = {
                        let mut s = String::new();
                        $(
                            s.push_str("  ");
                            s.push_str(stringify!($arg));
                            s.push_str(" = ");
                            s.push_str(&format!("{:?}\n", &$arg));
                        )+
                        s
                    };
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body),
                    );
                    if let Err(payload) = outcome {
                        eprintln!(
                            "proptest {}: case #{} of {} failed with inputs:\n{}",
                            stringify!($name), case_index, cases, rendered_inputs,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}
