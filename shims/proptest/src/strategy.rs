//! The [`Strategy`] trait and its combinators / base implementations.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value` (mirrors
/// `proptest::strategy::Strategy`, minus shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to pick a dependent strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// A strategy that always yields clones of one value (mirrors
/// `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}
