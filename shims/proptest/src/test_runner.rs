//! Runner configuration and the deterministic test RNG.
//!
//! Reproducibility contract (satisfies the repo's "pin proptest RNG seeds"
//! requirement):
//!
//! * The RNG seed for each property test is `FIXED_SEED` mixed with a hash of
//!   the test's name, so every CI run generates the identical case sequence.
//!   Set `PROPTEST_SEED=<u64>` to explore a different sequence locally.
//! * The case count is the explicit `ProptestConfig { cases, .. }` value;
//!   `PROPTEST_CASES=<n>` overrides it from the environment (useful to crank
//!   coverage up locally or trim CI latency).

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG all strategies draw from.
pub type TestRng = StdRng;

/// Default seed, chosen once and committed so CI runs are reproducible.
pub const FIXED_SEED: u64 = 0x5EED_1CDE_2025_0001;

/// Runner options (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for compatibility; this shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// The case count to run: `PROPTEST_CASES` from the environment if set,
/// otherwise the configured value.
pub fn resolved_cases(config: &ProptestConfig) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(value) => value
            .parse()
            .unwrap_or_else(|_| panic!("PROPTEST_CASES={value} is not a number")),
        Err(_) => config.cases,
    }
}

/// A per-test deterministic RNG: `PROPTEST_SEED` if set, else [`FIXED_SEED`],
/// mixed with a stable hash of the test name so distinct tests explore
/// distinct sequences.
pub fn deterministic_rng(test_name: &str) -> TestRng {
    let base = match std::env::var("PROPTEST_SEED") {
        Ok(value) => value
            .parse()
            .unwrap_or_else(|_| panic!("PROPTEST_SEED={value} is not a u64")),
        Err(_) => FIXED_SEED,
    };
    // FNV-1a over the test name: stable across runs/platforms, unlike
    // `DefaultHasher`.
    let mut name_hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in test_name.bytes() {
        name_hash ^= u64::from(byte);
        name_hash = name_hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(base ^ name_hash)
}
