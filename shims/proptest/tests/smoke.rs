//! Self-tests for the proptest shim: the macro machinery, strategies and the
//! deterministic runner behave as the workspace's property suites assume.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn ranges_respect_bounds(n in 4usize..=12, m in 0usize..5) {
        prop_assert!((4..=12).contains(&n));
        prop_assert!(m < 5);
    }

    #[test]
    fn vec_has_requested_length(v in proptest::collection::vec(any::<bool>(), 17)) {
        prop_assert_eq!(v.len(), 17);
    }

    #[test]
    fn flat_map_links_sizes(pair in (1usize..=8).prop_flat_map(|n| {
        proptest::collection::vec(proptest::bool::weighted(0.5), n)
            .prop_map(move |v| (n, v))
    })) {
        prop_assert_eq!(pair.0, pair.1.len());
    }

    #[test]
    fn tuples_and_map_compose(params in (1usize..=3, 0usize..=3).prop_map(|(k, d)| (k, d))) {
        prop_assert!(params.0 >= 1 && params.0 <= 3);
        prop_assert!(params.1 <= 3);
    }
}

#[test]
fn weighted_probabilities_hold_roughly() {
    use proptest::strategy::Strategy;
    let mut rng = proptest::test_runner::deterministic_rng("weighted_probabilities_hold_roughly");
    let strategy = proptest::bool::weighted(0.8);
    let hits = (0..10_000).filter(|_| strategy.generate(&mut rng)).count();
    assert!((7_500..8_500).contains(&hits), "hits = {hits}");
}

#[test]
fn runner_is_deterministic_per_test_name() {
    use proptest::strategy::Strategy;
    let collect = || {
        let mut rng = proptest::test_runner::deterministic_rng("some_test");
        (0..32)
            .map(|_| (0usize..1000).generate(&mut rng))
            .collect::<Vec<_>>()
    };
    assert_eq!(collect(), collect());
    let mut other = proptest::test_runner::deterministic_rng("another_test");
    let other_seq: Vec<usize> = (0..32)
        .map(|_| (0usize..1000).generate(&mut other))
        .collect();
    assert_ne!(
        collect(),
        other_seq,
        "distinct tests see distinct sequences"
    );
}

#[test]
fn failing_property_panics() {
    let result = std::panic::catch_unwind(|| {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]
            #[allow(dead_code)]
            fn always_fails(x in 0usize..10) {
                prop_assert!(x >= 10, "x = {x} is always below 10");
            }
        }
        always_fails();
    });
    assert!(
        result.is_err(),
        "a failing property must propagate its panic"
    );
}
