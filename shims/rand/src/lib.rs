//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build container has no network access to a crates registry, so this
//! workspace vendors the *exact API subset* of `rand` 0.8 that it uses:
//!
//! * [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`],
//! * [`Rng::gen_bool`], [`Rng::gen_range`] and [`Rng::gen`],
//! * [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`].
//!
//! The generator is SplitMix64 — statistically solid for test workloads and
//! fully deterministic per seed, which is all the workspace requires (every
//! generator in `rfc-datasets` takes an explicit seed). It is **not** the same
//! stream as the real `StdRng` (ChaCha12), so regenerated graphs differ from
//! ones produced with the real crate; nothing in-tree persists generated
//! graphs across crate swaps, so this is safe. Swap back to crates.io `rand`
//! by editing `[workspace.dependencies]` in the root manifest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A random number generator seedable from a `u64` (subset of
/// `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates the generator from a 64-bit seed. Equal seeds yield equal
    /// streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be uniformly sampled from a range (stand-in for
/// `rand::distributions::uniform::SampleUniform` + `SampleRange`).
pub trait SampleRange<T> {
    /// Samples a uniformly distributed value from `self`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Values producible by [`Rng::gen`] (stand-in for the `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Generates a uniformly random value.
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn generate<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level random-value methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p = {p} is not a probability");
        unit_f64(self.next_u64()) < p
    }

    /// Samples a uniform value from the given range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Generates a uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::generate(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64). API-compatible stand-in
    /// for `rand::rngs::StdRng`; the stream differs from the real crate's.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Sequence-related helpers (subset of `rand::seq`).
pub mod seq {
    use super::RngCore;

    /// Extension methods for slices (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn gen_range_covers_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.gen_range(3..=4u32);
            assert!(v == 3 || v == 4);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "49! permutations — identity is astronomically unlikely"
        );
    }
}
