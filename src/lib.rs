//! # rfc-suite — workspace facade
//!
//! Thin re-export of the workspace crates so the repo-level integration tests
//! (`tests/`) and examples (`examples/`) have a package to belong to. Depend on
//! the individual crates (`rfc-graph`, `rfc-core`, `rfc-datasets`) directly in
//! downstream code; this facade exists for the test pyramid.

#![forbid(unsafe_code)]

pub use rfc_core as core;
pub use rfc_datasets as datasets;
pub use rfc_graph as graph;
pub use rfc_obs as obs;
