//! Validity of every upper bound: on randomized instances, each configured bound must
//! dominate the true maximum fair clique size.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rfc_core::baseline::brute_force_max_fair_clique;
use rfc_core::bounds::{instance_upper_bound, BoundConfig, ExtraBound};
use rfc_core::prelude::*;
use rfc_datasets::synthetic::{erdos_renyi, plant_cliques, PlantedClique};

#[test]
fn bounds_dominate_optimum_on_random_graphs() {
    for seed in 0..15u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(6..16);
        let p = rng.gen_range(0.3..0.8);
        let g = erdos_renyi(n, p, 0.5, seed.wrapping_add(3000));
        let all: Vec<u32> = g.vertices().collect();
        for (k, delta) in [(1usize, 0usize), (1, 2), (2, 1), (3, 1)] {
            let params = FairCliqueParams::new(k, delta).unwrap();
            let opt = brute_force_max_fair_clique(&g, params)
                .map(|c| c.size())
                .unwrap_or(0);
            for extra in ExtraBound::ALL {
                let ub = instance_upper_bound(&g, &all, params, &BoundConfig::with_extra(extra));
                assert!(
                    ub >= opt,
                    "{} = {ub} < optimum {opt} (seed {seed}, n {n}, {params})",
                    extra.label()
                );
            }
        }
    }
}

#[test]
fn bounds_dominate_optimum_on_planted_instances() {
    for seed in 0..6u64 {
        let background = erdos_renyi(60, 0.08, 0.5, seed.wrapping_add(4000));
        let (g, planted) = plant_cliques(
            &background,
            &[PlantedClique {
                count_a: 5,
                count_b: 4,
            }],
            seed.wrapping_add(5000),
        );
        let all: Vec<u32> = g.vertices().collect();
        let params = FairCliqueParams::new(3, 1).unwrap();
        // The planted clique guarantees an optimum of at least 8 (4+4 under δ=1).
        let lower = g
            .attribute_counts_of(&planted[0])
            .best_fair_subset_size(params.k, params.delta)
            .unwrap();
        for extra in ExtraBound::ALL {
            let ub = instance_upper_bound(&g, &all, params, &BoundConfig::with_extra(extra));
            assert!(ub >= lower, "{}: {ub} < {lower}", extra.label());
        }
    }
}

#[test]
fn bound_on_candidate_neighborhoods_is_sound() {
    // The search applies bounds to (R = {v}, C = N(v) ∩ later) instances; emulate that
    // shape here: the instance is a vertex plus its neighborhood, and the bound must
    // dominate the best fair clique containing v.
    for seed in 0..6u64 {
        let g = erdos_renyi(14, 0.5, 0.5, seed.wrapping_add(8000));
        let params = FairCliqueParams::new(2, 1).unwrap();
        for v in g.vertices() {
            let mut instance = vec![v];
            instance.extend_from_slice(g.neighbors(v));
            let ub = instance_upper_bound(&g, &instance, params, &BoundConfig::default());
            // Brute force restricted to the closed neighborhood of v.
            let sub = rfc_graph::subgraph::induced_subgraph(&g, &instance);
            let local_opt = brute_force_max_fair_clique(&sub.graph, params)
                .map(|c| c.size())
                .unwrap_or(0);
            assert!(ub >= local_opt, "seed {seed}, v {v}: {ub} < {local_opt}");
        }
    }
}

#[test]
fn zero_bound_certifies_infeasibility() {
    // Whenever a bound evaluates to 0 the instance must truly contain no fair clique.
    for seed in 0..10u64 {
        let g = erdos_renyi(12, 0.35, 0.7, seed.wrapping_add(9000));
        let all: Vec<u32> = g.vertices().collect();
        for (k, delta) in [(2usize, 0usize), (3, 1), (4, 2)] {
            let params = FairCliqueParams::new(k, delta).unwrap();
            let ub = instance_upper_bound(&g, &all, params, &BoundConfig::default());
            if ub == 0 {
                assert!(
                    brute_force_max_fair_clique(&g, params).is_none(),
                    "seed {seed} {params}: bound said infeasible but a fair clique exists"
                );
            }
        }
    }
}
