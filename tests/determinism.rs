//! Determinism guarantees: generators are reproducible per seed and the search returns
//! the same solution (not just the same size) across repeated runs.
//!
//! All RNG seeds in this suite are explicit literals, and the `rand` shim's
//! `StdRng` is a pure function of its seed, so every assertion here is exactly
//! reproducible in CI — there is no ambient entropy anywhere in the pipeline.

use rfc_core::prelude::*;
use rfc_datasets::case_study::CaseStudy;
use rfc_datasets::scaling::{sample_edges, sample_vertices};
use rfc_datasets::synthetic::{erdos_renyi, power_law, PowerLawConfig};
use rfc_datasets::PaperDataset;

#[test]
fn generators_are_reproducible() {
    assert_eq!(erdos_renyi(80, 0.1, 0.5, 5), erdos_renyi(80, 0.1, 0.5, 5));
    let cfg = PowerLawConfig {
        n: 400,
        edges_per_vertex: 3,
        triangle_prob: 0.3,
        prob_a: 0.5,
    };
    assert_eq!(power_law(&cfg, 9), power_law(&cfg, 9));
    assert_eq!(
        PaperDataset::Flixster.generate(),
        PaperDataset::Flixster.generate()
    );
    let g = erdos_renyi(120, 0.08, 0.5, 6);
    assert_eq!(sample_vertices(&g, 0.6, 3), sample_vertices(&g, 0.6, 3));
    assert_eq!(sample_edges(&g, 0.6, 3), sample_edges(&g, 0.6, 3));
}

#[test]
fn different_seeds_give_different_graphs() {
    assert_ne!(erdos_renyi(80, 0.1, 0.5, 5), erdos_renyi(80, 0.1, 0.5, 6));
}

#[test]
fn search_returns_identical_solutions_across_runs() {
    // Full determinism (same clique, same stats) is the contract of the *serial*
    // search; multi-threaded runs guarantee only the optimal size (see
    // tests/parallel_consistency.rs), so this test pins `ThreadCount::Serial`.
    let cs = CaseStudy::Nba.generate();
    let params = FairCliqueParams::new(cs.default_k, cs.default_delta).unwrap();
    let config = SearchConfig::default().with_threads(ThreadCount::Serial);
    let first = max_fair_clique(&cs.graph, params, &config);
    for _ in 0..3 {
        let again = max_fair_clique(&cs.graph, params, &config);
        assert_eq!(
            first.best.as_ref().map(|c| c.vertices.clone()),
            again.best.as_ref().map(|c| c.vertices.clone()),
            "the serial search must be fully deterministic"
        );
        assert_eq!(first.stats.branches, again.stats.branches);
    }
}

#[test]
fn heuristic_is_deterministic() {
    let cs = CaseStudy::Aminer.generate();
    let params = FairCliqueParams::new(cs.default_k, cs.default_delta).unwrap();
    let a = heur_rfc(&cs.graph, params, &HeuristicConfig::default());
    let b = heur_rfc(&cs.graph, params, &HeuristicConfig::default());
    assert_eq!(a, b);
}

#[test]
fn reduction_stats_are_deterministic_modulo_timing() {
    let g = erdos_renyi(200, 0.06, 0.5, 17);
    let params = FairCliqueParams::new(2, 1).unwrap();
    let (r1, s1) = rfc_core::reduction::apply_reductions(&g, params, &ReductionConfig::default());
    let (r2, s2) = rfc_core::reduction::apply_reductions(&g, params, &ReductionConfig::default());
    assert_eq!(r1, r2);
    let sizes1: Vec<_> = s1.stages.iter().map(|s| (s.vertices, s.edges)).collect();
    let sizes2: Vec<_> = s2.stages.iter().map(|s| (s.vertices, s.edges)).collect();
    assert_eq!(sizes1, sizes2);
}
