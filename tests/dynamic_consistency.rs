//! Differential harness for the dynamic-graph subsystem: after **every** commit of a
//! random update stream, the incremental [`DynamicRfcSolver`] must agree with a
//! from-scratch [`RfcSolver`] built on the applied graph —
//!
//! * `solve` for all three fairness models (optimal size, termination, and the
//!   returned clique verifies under the model), and
//! * `enumerate` (the *full* maximal-fair-clique set, compared as sorted vertex
//!   sets),
//!
//! plus an independent shadow replay of the stream that pins `GraphDelta::apply`
//! itself against a naive rebuild. Deterministic edge-case tests cover the
//! adversarial corners: deleting a vertex of the current incumbent clique, updates
//! that merge/split connected components, a stream that empties the graph, and
//! re-inserting a previously deleted vertex id.
//!
//! Thread counts are env-driven so CI can sweep them (`RFC_TEST_THREADS=1` / `4`,
//! matching `parallel_consistency.rs`); the proptest RNG seed is the committed
//! fixed seed, so CI runs are reproducible (`PROPTEST_SEED` / `PROPTEST_CASES`
//! override).

use proptest::prelude::*;

use rfc_core::dynamic::DynamicRfcSolver;
use rfc_core::prelude::*;
use rfc_core::verify;
use rfc_datasets::updates::delete_incumbent_stream;
use rfc_graph::delta::UpdateOp;
use rfc_graph::fixtures;

/// The models every differential check covers: the relative model with a binding δ,
/// plus the weak and strong extremes.
const MODELS: [FairnessModel; 4] = [
    FairnessModel::Relative { k: 1, delta: 0 },
    FairnessModel::Relative { k: 2, delta: 1 },
    FairnessModel::Weak { k: 1 },
    FairnessModel::Strong { k: 1 },
];

/// Thread count for the proptest stream (env-driven; 1 when unset so the default
/// `cargo test` run stays deterministic and fast). CI sweeps 1 and 4.
fn stream_threads() -> ThreadCount {
    match std::env::var("RFC_TEST_THREADS") {
        Ok(v) => match v.parse::<usize>() {
            Ok(0) | Ok(1) => ThreadCount::Serial,
            Ok(n) => ThreadCount::Fixed(n),
            Err(_) => panic!("RFC_TEST_THREADS must be a thread count such as 1 or 4"),
        },
        Err(_) => ThreadCount::Serial,
    }
}

fn query(model: FairnessModel, threads: ThreadCount) -> Query {
    Query::new(model).with_config(SearchConfig::default().with_threads(threads))
}

fn enumerate_sets(
    solve: impl FnOnce(&EnumQuery, &mut CollectSink),
    model: FairnessModel,
    threads: ThreadCount,
) -> Vec<Vec<VertexId>> {
    let mut sink = CollectSink::new();
    solve(&EnumQuery::new(model).with_threads(threads), &mut sink);
    let mut sets: Vec<Vec<VertexId>> = sink
        .into_cliques()
        .into_iter()
        .map(|clique| clique.vertices)
        .collect();
    sets.sort();
    sets
}

/// The full differential check: incremental vs from-scratch on the current
/// committed graph, for every model, solve and enumerate.
fn assert_matches_scratch(dynamic: &mut DynamicRfcSolver, threads: ThreadCount, label: &str) {
    let scratch = RfcSolver::new(dynamic.graph().clone());
    for model in MODELS {
        let q = query(model, threads);
        let incremental = dynamic.solve(&q).expect("valid query");
        let reference = scratch.solve(&q).expect("valid query");
        assert_eq!(
            incremental.best().map(|c| c.size()),
            reference.best().map(|c| c.size()),
            "{label}: optimum differs under {model}"
        );
        assert_eq!(
            incremental.termination, reference.termination,
            "{label}: termination differs under {model}"
        );
        if let Some(best) = incremental.best() {
            assert!(
                verify::is_fair_clique_under(dynamic.graph(), &best.vertices, model),
                "{label}: invalid clique under {model}"
            );
        }
        let incremental_sets = enumerate_sets(
            |eq, sink| drop(dynamic.enumerate(eq, sink).unwrap()),
            model,
            threads,
        );
        let reference_sets = enumerate_sets(
            |eq, sink| drop(scratch.enumerate(eq, sink).unwrap()),
            model,
            threads,
        );
        assert_eq!(
            incremental_sets, reference_sets,
            "{label}: maximal set differs under {model}"
        );
    }
}

/// An independent model of the overlaid graph, mutated op-by-op and rebuilt through
/// the forgiving `GraphBuilder` — pins `GraphDelta::apply` against a second
/// implementation.
#[derive(Debug, Clone)]
struct Shadow {
    attrs: Vec<Attribute>,
    alive: Vec<bool>,
    edges: std::collections::BTreeSet<(VertexId, VertexId)>,
}

impl Shadow {
    fn new(g: &AttributedGraph) -> Self {
        Self {
            attrs: g.attributes().to_vec(),
            alive: vec![true; g.num_vertices()],
            edges: g.edge_list().iter().copied().collect(),
        }
    }

    fn live(&self) -> Vec<VertexId> {
        (0..self.alive.len() as VertexId)
            .filter(|&v| self.alive[v as usize])
            .collect()
    }

    fn dead(&self) -> Vec<VertexId> {
        (0..self.alive.len() as VertexId)
            .filter(|&v| !self.alive[v as usize])
            .collect()
    }

    fn build(&self) -> AttributedGraph {
        let mut b = GraphBuilder::with_attributes(self.attrs.clone());
        b.add_edges(self.edges.iter().copied());
        b.build().expect("shadow edges are in range")
    }
}

/// A generated update stream: a random base graph plus raw op seeds interpreted
/// against the evolving shadow state.
#[derive(Debug, Clone)]
struct StreamPlan {
    n: usize,
    attr_bits: Vec<bool>,
    edge_bits: Vec<bool>,
    raw_ops: Vec<(u8, u32, u32)>,
    commit_every: usize,
}

impl StreamPlan {
    fn base_graph(&self) -> AttributedGraph {
        let attrs = self
            .attr_bits
            .iter()
            .map(|&a| if a { Attribute::A } else { Attribute::B })
            .collect();
        let mut b = GraphBuilder::with_attributes(attrs);
        let mut idx = 0usize;
        for u in 0..self.n as VertexId {
            for v in (u + 1)..self.n as VertexId {
                if self.edge_bits[idx] {
                    b.add_edge(u, v);
                }
                idx += 1;
            }
        }
        b.build().expect("generated graph is valid")
    }

    /// Interprets one raw op against the shadow, returning the concrete op (and
    /// mutating the shadow to match). Returns `None` when the op is impossible in
    /// the current state (e.g. restore with nothing removed and the toggle fallback
    /// also blocked).
    fn interpret(&self, shadow: &mut Shadow, raw: (u8, u32, u32)) -> Option<UpdateOp> {
        let (kind, x, y) = raw;
        let toggle = |shadow: &mut Shadow, x: u32, y: u32| -> Option<UpdateOp> {
            let live = shadow.live();
            if live.len() < 2 {
                return None;
            }
            let u = live[x as usize % live.len()];
            let v = live[y as usize % live.len()];
            if u == v {
                return None;
            }
            let key = (u.min(v), u.max(v));
            if shadow.edges.remove(&key) {
                Some(UpdateOp::RemoveEdge { u: key.0, v: key.1 })
            } else {
                shadow.edges.insert(key);
                Some(UpdateOp::InsertEdge { u: key.0, v: key.1 })
            }
        };
        match kind % 10 {
            // Mostly edge toggles: they drive component merges and splits.
            0..=5 => toggle(shadow, x, y),
            6 => {
                // Append a vertex (cap the growth so searches stay small).
                if shadow.alive.len() >= self.n + 8 {
                    return toggle(shadow, x, y);
                }
                let attr = if y % 2 == 0 {
                    Attribute::A
                } else {
                    Attribute::B
                };
                shadow.attrs.push(attr);
                shadow.alive.push(true);
                Some(UpdateOp::InsertVertex { attr })
            }
            7 => {
                // Remove a live vertex (keep at least two alive).
                let live = shadow.live();
                if live.len() <= 2 {
                    return toggle(shadow, x, y);
                }
                let v = live[x as usize % live.len()];
                shadow.alive[v as usize] = false;
                shadow.edges.retain(|&(a, b)| a != v && b != v);
                Some(UpdateOp::RemoveVertex { v })
            }
            _ => {
                // Restore a previously removed id (possibly with the other attribute).
                let dead = shadow.dead();
                if dead.is_empty() {
                    return toggle(shadow, x, y);
                }
                let v = dead[x as usize % dead.len()];
                let attr = if y % 2 == 0 {
                    Attribute::A
                } else {
                    Attribute::B
                };
                shadow.alive[v as usize] = true;
                shadow.attrs[v as usize] = attr;
                Some(UpdateOp::RestoreVertex { v, attr })
            }
        }
    }
}

fn stream_plan() -> impl Strategy<Value = StreamPlan> {
    (8usize..=14).prop_flat_map(|n| {
        let pairs = n * (n - 1) / 2;
        (
            proptest::collection::vec(any::<bool>(), n),
            proptest::collection::vec(proptest::bool::weighted(0.35), pairs),
            proptest::collection::vec((any::<u8>(), any::<u32>(), any::<u32>()), 500..=1000),
            40usize..=80,
        )
            .prop_map(
                move |(attr_bits, edge_bits, raw_ops, commit_every)| StreamPlan {
                    n,
                    attr_bits,
                    edge_bits,
                    raw_ops,
                    commit_every,
                },
            )
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        .. ProptestConfig::default()
    })]

    /// The heart of the PR: a 500–1000-op random update stream; after every commit
    /// the incremental solver equals a from-scratch solver on the applied graph for
    /// solve (all models) and enumerate (full maximal set), and the committed graph
    /// equals an independent shadow rebuild.
    #[test]
    fn incremental_equals_from_scratch_on_random_streams(plan in stream_plan()) {
        let threads = stream_threads();
        let base = plan.base_graph();
        let mut shadow = Shadow::new(&base);
        let mut dynamic = DynamicRfcSolver::new(base);
        let mut since_commit = 0usize;
        let mut commits = 0usize;
        for &raw in &plan.raw_ops {
            let Some(op) = plan.interpret(&mut shadow, raw) else {
                continue;
            };
            dynamic
                .apply_op(&op)
                .unwrap_or_else(|e| panic!("shadow-validated op {op:?} rejected: {e}"));
            since_commit += 1;
            if since_commit == plan.commit_every {
                since_commit = 0;
                commits += 1;
                dynamic.commit();
                prop_assert_eq!(
                    dynamic.graph(),
                    &shadow.build(),
                    "committed graph diverged from the shadow rebuild"
                );
                assert_matches_scratch(&mut dynamic, threads, &format!("commit #{commits}"));
            }
        }
        // Flush the tail batch too.
        if since_commit > 0 {
            dynamic.commit();
            prop_assert_eq!(dynamic.graph(), &shadow.build(), "tail commit diverged");
            assert_matches_scratch(&mut dynamic, threads, "tail commit");
        }
        prop_assert!(commits >= 5, "stream must span several commits");
    }
}

/// Edge case: delete a vertex of the *current incumbent clique* (the adversarial
/// stream from `rfc-datasets` kills the whole planted clique one vertex per batch,
/// then stitches it back together); every commit must track the scratch solver.
#[test]
fn deleting_the_incumbent_clique_tracks_scratch() {
    for &threads in &[ThreadCount::Serial, ThreadCount::Fixed(4)] {
        let graph = fixtures::fig1_graph();
        let model = FairnessModel::Relative { k: 3, delta: 1 };
        let mut dynamic = DynamicRfcSolver::new(graph.clone());
        let incumbent = dynamic
            .solve(&query(model, threads))
            .unwrap()
            .into_best()
            .expect("fig1 has a fair clique")
            .vertices;
        assert!(graph.is_clique(&incumbent));
        let stream = delete_incumbent_stream(&graph, &incumbent, 2);
        let mut commits = 0;
        for op in &stream {
            if let Some(outcome) = dynamic.apply_op(op).expect("stream is valid") {
                commits += 1;
                assert!(outcome.ops > 0);
                assert_matches_scratch(
                    &mut dynamic,
                    threads,
                    &format!("incumbent-delete commit #{commits}"),
                );
            }
        }
        assert!(commits >= incumbent.len() / 2);
        // The clique is stitched back together at the end.
        assert!(dynamic.graph().is_clique(&incumbent));
        assert_eq!(
            dynamic
                .solve(&query(model, threads))
                .unwrap()
                .best()
                .unwrap()
                .size(),
            incumbent.len()
        );
    }
}

/// Edge case: updates that split a connected component and then merge it back.
#[test]
fn component_splits_and_merges_track_scratch() {
    for &threads in &[ThreadCount::Serial, ThreadCount::Fixed(4)] {
        let graph = fixtures::two_cliques_with_bridge(8, 6);
        // The bridge is the unique edge crossing the two cliques (ids 0..8 and 8..14).
        let &(u, v) = graph
            .edge_list()
            .iter()
            .find(|&&(u, v)| u < 8 && v >= 8)
            .expect("fixture has a bridge");
        let mut dynamic = DynamicRfcSolver::new(graph);
        assert_matches_scratch(&mut dynamic, threads, "bridge: initial");

        // Split: the bridge goes away, one component becomes two.
        dynamic.remove_edge(u, v).unwrap();
        dynamic.commit();
        assert_matches_scratch(&mut dynamic, threads, "bridge: split");

        // Merge harder: re-insert the bridge plus a second cross edge.
        dynamic.insert_edge(u, v).unwrap();
        dynamic.insert_edge(0, 13).unwrap();
        dynamic.commit();
        assert_matches_scratch(&mut dynamic, threads, "bridge: merged");
    }
}

/// Edge case: an update stream that empties the graph entirely — and regrows it.
#[test]
fn emptying_and_regrowing_the_graph_tracks_scratch() {
    let threads = ThreadCount::Serial;
    let graph = fixtures::balanced_clique(8);
    let n = graph.num_vertices() as VertexId;
    let mut dynamic = DynamicRfcSolver::new(graph);
    // Empty it in two batches.
    for v in 0..n / 2 {
        dynamic.remove_vertex(v).unwrap();
    }
    dynamic.commit();
    assert_matches_scratch(&mut dynamic, threads, "half-emptied");
    for v in n / 2..n {
        dynamic.remove_vertex(v).unwrap();
    }
    dynamic.commit();
    assert_eq!(dynamic.graph().num_edges(), 0);
    assert_matches_scratch(&mut dynamic, threads, "emptied");
    let solution = dynamic
        .solve(&query(FairnessModel::Relative { k: 1, delta: 1 }, threads))
        .unwrap();
    assert_eq!(solution.termination, Termination::Infeasible);

    // Regrow: restore half the ids, append two fresh vertices, build a K4.
    dynamic.restore_vertex(0, Attribute::A).unwrap();
    dynamic.restore_vertex(1, Attribute::B).unwrap();
    let x = dynamic.insert_vertex(Attribute::A);
    let y = dynamic.insert_vertex(Attribute::B);
    for &(a, b) in &[(0, 1), (0, x), (0, y), (1, x), (1, y), (x, y)] {
        dynamic.insert_edge(a, b).unwrap();
    }
    dynamic.commit();
    assert_matches_scratch(&mut dynamic, threads, "regrown");
    let best = dynamic
        .solve(&query(FairnessModel::Strong { k: 2 }, threads))
        .unwrap()
        .into_best()
        .expect("the regrown K4 is strongly fair");
    assert_eq!(best.size(), 4);
}

/// Edge case: re-inserting a previously deleted vertex id, including an attribute
/// flip, across separate commits.
#[test]
fn reinserting_a_deleted_vertex_id_tracks_scratch() {
    let threads = ThreadCount::Serial;
    let mut dynamic = DynamicRfcSolver::new(fixtures::fig1_graph());
    let victim: VertexId = 13;
    let old_neighbors: Vec<VertexId> = dynamic.graph().neighbors(victim).to_vec();
    dynamic.remove_vertex(victim).unwrap();
    dynamic.commit();
    assert_matches_scratch(&mut dynamic, threads, "victim removed");
    // The id stays reserved across commits: edges to it are rejected until restore.
    assert!(dynamic.insert_edge(victim, 6).is_err());
    assert!(dynamic.remove_vertex(victim).is_err());

    // Bring it back with the opposite attribute and its old edges.
    let flipped = match fixtures::fig1_graph().attribute(victim) {
        Attribute::A => Attribute::B,
        Attribute::B => Attribute::A,
    };
    dynamic.restore_vertex(victim, flipped).unwrap();
    for w in old_neighbors {
        dynamic.insert_edge(victim, w).unwrap();
    }
    dynamic.commit();
    assert_eq!(dynamic.graph().attribute(victim), flipped);
    assert_matches_scratch(
        &mut dynamic,
        threads,
        "victim restored with flipped attribute",
    );
}
