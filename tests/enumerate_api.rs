//! Integration tests for the streaming maximal-fair-clique enumeration subsystem
//! (`rfc_core::enumerate` + [`RfcSolver::enumerate`]):
//!
//! * the enumerated set equals the brute-force maximal-fair-clique oracle on every
//!   fixture (including the paper's Fig. 1 graph) for all three fairness models;
//! * serial and parallel runs emit the same *set* (thread counts driven by
//!   `RFC_TEST_THREADS`, mirroring the `parallel_consistency` sweep);
//! * budget-exhausted and cancelled runs report a non-complete termination while
//!   every clique they did emit verifies as a maximal fair clique;
//! * `LimitSink` truncation, serial determinism, and cross-subsystem consistency
//!   with the exact `solve` optimum;
//! * a property-based comparison against the oracle on small random attributed
//!   graphs.

use proptest::prelude::*;

use rfc_core::baseline::brute_force_all_maximal_fair_cliques;
use rfc_core::prelude::*;
use rfc_core::verify;
use rfc_datasets::synthetic::{disjoint_union, erdos_renyi, plant_cliques, PlantedClique};
use rfc_graph::fixtures;
use rfc_graph::{Attribute, GraphBuilder};

/// Thread counts to exercise, from `RFC_TEST_THREADS` (1 = the serial path; unset
/// tests 2 and 4) — the same contract the `parallel_consistency` suite uses.
fn thread_counts() -> Vec<usize> {
    match std::env::var("RFC_TEST_THREADS") {
        Ok(v) => vec![v
            .parse()
            .expect("RFC_TEST_THREADS must be a thread count such as 1 or 4")],
        Err(_) => vec![2, 4],
    }
}

fn fixture_graphs() -> Vec<(AttributedGraph, &'static str)> {
    vec![
        (fixtures::fig1_graph(), "fig1"),
        (fixtures::fig2_graph(), "fig2"),
        (fixtures::balanced_clique(7), "balanced-clique"),
        (fixtures::two_cliques_with_bridge(6, 4), "bridge"),
        (fixtures::path_graph(9), "path"),
    ]
}

fn models() -> Vec<FairnessModel> {
    vec![
        FairnessModel::Relative { k: 1, delta: 0 },
        FairnessModel::Relative { k: 1, delta: 2 },
        FairnessModel::Relative { k: 2, delta: 1 },
        FairnessModel::Relative { k: 3, delta: 1 },
        FairnessModel::Weak { k: 1 },
        FairnessModel::Weak { k: 2 },
        FairnessModel::Weak { k: 3 },
        FairnessModel::Strong { k: 1 },
        FairnessModel::Strong { k: 2 },
        FairnessModel::Strong { k: 3 },
    ]
}

/// Enumerates serially and returns the emitted vertex sets sorted for comparison.
fn enumerate_sorted(solver: &RfcSolver, model: FairnessModel) -> Vec<Vec<VertexId>> {
    let mut sink = CollectSink::new();
    let outcome = solver
        .enumerate(
            &EnumQuery::new(model).with_threads(ThreadCount::Serial),
            &mut sink,
        )
        .expect("valid query");
    assert_eq!(outcome.termination, EnumTermination::Complete);
    assert_eq!(outcome.emitted as usize, sink.len());
    let mut sets: Vec<Vec<VertexId>> = sink
        .into_cliques()
        .into_iter()
        .map(|c| c.vertices)
        .collect();
    sets.sort();
    sets
}

#[test]
fn enumeration_matches_the_brute_force_oracle_on_fixtures() {
    for (graph, label) in fixture_graphs() {
        let solver = RfcSolver::new(graph);
        for model in models() {
            let got = enumerate_sorted(&solver, model);
            let want: Vec<Vec<VertexId>> =
                brute_force_all_maximal_fair_cliques(solver.graph(), model)
                    .into_iter()
                    .map(|c| c.vertices)
                    .collect();
            assert_eq!(got, want, "{label} under {model}");
        }
    }
}

#[test]
fn every_emitted_clique_passes_the_verify_set_oracle() {
    for (graph, label) in fixture_graphs() {
        let solver = RfcSolver::new(graph);
        for model in models() {
            let mut sink = CollectSink::new();
            solver
                .enumerate(
                    &EnumQuery::new(model).with_threads(ThreadCount::Serial),
                    &mut sink,
                )
                .unwrap();
            assert!(
                verify::is_maximal_fair_clique_set(solver.graph(), sink.cliques(), model),
                "{label} under {model}"
            );
        }
    }
}

#[test]
fn enumeration_maximum_agrees_with_the_exact_solver() {
    // The largest enumerated maximal fair clique must be exactly the solve() optimum
    // (every maximum fair clique is in particular a maximal one).
    for (graph, label) in fixture_graphs() {
        let solver = RfcSolver::new(graph);
        for model in models() {
            let enumerated_max = enumerate_sorted(&solver, model).iter().map(Vec::len).max();
            let solved = solver
                .solve(
                    &Query::new(model)
                        .with_config(SearchConfig::default().with_threads(ThreadCount::Serial)),
                )
                .unwrap();
            assert_eq!(
                enumerated_max,
                solved.best().map(|c| c.size()),
                "{label} under {model}"
            );
        }
    }
}

/// A multi-component synthetic workload: several ER blobs with planted fair cliques,
/// so parallel workers genuinely enumerate different components.
fn multi_component_graph() -> AttributedGraph {
    let blobs: Vec<AttributedGraph> = [(3usize, 71u64), (4, 72), (2, 73), (5, 74)]
        .iter()
        .map(|&(half, seed)| {
            let background = erdos_renyi(80, 0.05, 0.5, seed);
            let planted = PlantedClique {
                count_a: half,
                count_b: half,
            };
            plant_cliques(&background, &[planted], seed ^ 0xbeef).0
        })
        .collect();
    disjoint_union(&blobs)
}

#[test]
fn serial_and_parallel_enumeration_agree_on_the_set() {
    let graphs = [
        (fixtures::fig1_graph(), "fig1"),
        (fixtures::two_cliques_with_bridge(8, 6), "bridge"),
        (multi_component_graph(), "multi-component"),
    ];
    for (graph, label) in graphs {
        let solver = RfcSolver::new(graph);
        for model in [
            FairnessModel::Relative { k: 2, delta: 1 },
            FairnessModel::Weak { k: 2 },
            FairnessModel::Strong { k: 2 },
        ] {
            let serial = enumerate_sorted(&solver, model);
            for &n in &thread_counts() {
                let threads = if n <= 1 {
                    ThreadCount::Serial
                } else {
                    ThreadCount::Fixed(n)
                };
                let mut sink = CollectSink::new();
                let outcome = solver
                    .enumerate(&EnumQuery::new(model).with_threads(threads), &mut sink)
                    .unwrap();
                assert_eq!(
                    outcome.termination,
                    EnumTermination::Complete,
                    "{label} under {model}, {n} threads"
                );
                let mut sets: Vec<Vec<VertexId>> = sink
                    .into_cliques()
                    .into_iter()
                    .map(|c| c.vertices)
                    .collect();
                sets.sort();
                assert_eq!(sets, serial, "{label} under {model}, {n} threads");
            }
        }
    }
}

#[test]
fn budget_exhausted_runs_emit_only_verified_cliques() {
    let solver = RfcSolver::new(erdos_renyi(60, 0.5, 0.5, 11));
    let model = FairnessModel::Relative { k: 2, delta: 1 };
    // Unbudgeted count, to prove the budget genuinely truncated the run.
    let mut full = CountSink::new();
    let complete = solver
        .enumerate(
            &EnumQuery::new(model).with_threads(ThreadCount::Serial),
            &mut full,
        )
        .unwrap();
    assert_eq!(complete.termination, EnumTermination::Complete);
    assert!(full.count() > 10, "workload too easy for a budget test");

    for &threads in &[1usize, 4] {
        let threads = if threads <= 1 {
            ThreadCount::Serial
        } else {
            ThreadCount::Fixed(threads)
        };
        let mut sink = CollectSink::new();
        let outcome = solver
            .enumerate(
                &EnumQuery::new(model)
                    .with_threads(threads)
                    .with_budget(Budget::unlimited().with_node_limit(300)),
                &mut sink,
            )
            .unwrap();
        assert_eq!(outcome.termination, EnumTermination::BudgetExhausted);
        assert!(!outcome.termination.is_complete());
        assert!(outcome.emitted < full.count());
        assert!(
            verify::is_maximal_fair_clique_set(solver.graph(), sink.cliques(), model),
            "partial output must verify ({threads:?})"
        );
    }
}

#[test]
fn zero_time_budget_trips_immediately() {
    let solver = RfcSolver::new(erdos_renyi(60, 0.5, 0.5, 11));
    let mut sink = CollectSink::new();
    let outcome = solver
        .enumerate(
            &EnumQuery::new(FairnessModel::Relative { k: 2, delta: 1 })
                .with_threads(ThreadCount::Serial)
                .with_budget(Budget::unlimited().with_time_limit(std::time::Duration::ZERO)),
            &mut sink,
        )
        .unwrap();
    assert_eq!(outcome.termination, EnumTermination::BudgetExhausted);
    assert!(verify::is_maximal_fair_clique_set(
        solver.graph(),
        sink.cliques(),
        FairnessModel::Relative { k: 2, delta: 1 }
    ));
}

#[test]
fn cancellation_stops_enumeration_and_is_reported() {
    let solver = RfcSolver::new(erdos_renyi(60, 0.5, 0.5, 11));
    let token = CancelToken::new();
    token.cancel();
    let mut sink = CountSink::new();
    let outcome = solver
        .enumerate(
            &EnumQuery::new(FairnessModel::Relative { k: 2, delta: 1 })
                .with_threads(ThreadCount::Serial)
                .with_cancel(token),
            &mut sink,
        )
        .unwrap();
    assert_eq!(outcome.termination, EnumTermination::Cancelled);
    assert_eq!(sink.count(), 0);
}

#[test]
fn limit_sink_truncates_the_stream() {
    let solver = RfcSolver::new(erdos_renyi(40, 0.4, 0.5, 7));
    let model = FairnessModel::Relative { k: 1, delta: 1 };
    let full = enumerate_sorted(&solver, model);
    assert!(full.len() > 5, "workload too easy for a limit test");
    let limit = 5u64;
    let mut collect = CollectSink::new();
    let outcome = {
        let mut limited = LimitSink::new(&mut collect, limit);
        solver
            .enumerate(
                &EnumQuery::new(model).with_threads(ThreadCount::Serial),
                &mut limited,
            )
            .unwrap()
    };
    assert_eq!(outcome.termination, EnumTermination::SinkStopped);
    assert_eq!(outcome.emitted, limit);
    assert_eq!(collect.len(), limit as usize);
    // The truncated prefix is exactly the first `limit` cliques of the (serial,
    // deterministic) full emission order, and still a valid partial answer.
    assert!(verify::is_maximal_fair_clique_set(
        solver.graph(),
        collect.cliques(),
        model
    ));
    for clique in collect.cliques() {
        assert!(full.contains(&clique.vertices));
    }
}

#[test]
fn serial_enumeration_is_reproducible_including_stats() {
    let solver = RfcSolver::new(fixtures::fig1_graph());
    let query = EnumQuery::new(FairnessModel::Strong { k: 3 }).with_threads(ThreadCount::Serial);
    let mut first = CollectSink::new();
    let first_outcome = solver.enumerate(&query, &mut first).unwrap();
    for _ in 0..2 {
        let mut again = CollectSink::new();
        let outcome = solver.enumerate(&query, &mut again).unwrap();
        assert_eq!(
            again.cliques(),
            first.cliques(),
            "serial emission order must be deterministic"
        );
        assert_eq!(outcome.stats.branches, first_outcome.stats.branches);
        assert_eq!(
            outcome.stats.maximality_rejections,
            first_outcome.stats.maximality_rejections
        );
        assert_eq!(outcome.emitted, first_outcome.emitted);
    }
}

#[test]
fn min_size_equals_post_filtering_the_full_enumeration() {
    let solver = RfcSolver::new(fixtures::two_cliques_with_bridge(8, 6));
    let model = FairnessModel::Relative { k: 2, delta: 2 };
    let full = enumerate_sorted(&solver, model);
    for min_size in [5usize, 6, 8] {
        let mut sink = CollectSink::new();
        solver
            .enumerate(
                &EnumQuery::new(model)
                    .with_threads(ThreadCount::Serial)
                    .with_min_size(min_size),
                &mut sink,
            )
            .unwrap();
        let mut got: Vec<Vec<VertexId>> = sink
            .into_cliques()
            .into_iter()
            .map(|c| c.vertices)
            .collect();
        got.sort();
        let want: Vec<Vec<VertexId>> = full
            .iter()
            .filter(|c| c.len() >= min_size)
            .cloned()
            .collect();
        assert_eq!(got, want, "min_size = {min_size}");
    }
}

/// A compact description of a random attributed graph: per-vertex attribute bits plus
/// one bit per vertex pair (the same scheme `prop_invariants.rs` uses).
#[derive(Debug, Clone)]
struct RandomGraph {
    attrs: Vec<bool>,
    edges: Vec<bool>,
}

impl RandomGraph {
    fn build(&self) -> AttributedGraph {
        let n = self.attrs.len();
        let attrs = self
            .attrs
            .iter()
            .map(|&a| if a { Attribute::A } else { Attribute::B })
            .collect();
        let mut b = GraphBuilder::with_attributes(attrs);
        let mut idx = 0usize;
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if self.edges[idx] {
                    b.add_edge(u, v);
                }
                idx += 1;
            }
        }
        b.build().expect("generated graph is valid")
    }
}

fn random_graph(max_n: usize) -> impl Strategy<Value = RandomGraph> {
    (4..=max_n).prop_flat_map(|n| {
        let pairs = n * (n - 1) / 2;
        (
            proptest::collection::vec(any::<bool>(), n),
            proptest::collection::vec(proptest::bool::weighted(0.55), pairs),
        )
            .prop_map(|(attrs, edges)| RandomGraph { attrs, edges })
    })
}

fn model_strategy() -> impl Strategy<Value = FairnessModel> {
    (0usize..3, 1usize..=2, 0usize..=2).prop_map(|(kind, k, delta)| match kind {
        0 => FairnessModel::Relative { k, delta },
        1 => FairnessModel::Weak { k },
        _ => FairnessModel::Strong { k },
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 96,
        .. ProptestConfig::default()
    })]

    /// On random small attributed graphs, the streaming enumeration emits exactly the
    /// brute-force set of maximal fair cliques for every fairness model, and the
    /// emitted family passes the independent verify-based set oracle.
    #[test]
    fn enumeration_matches_oracle_on_random_graphs(
        rg in random_graph(10),
        model in model_strategy(),
    ) {
        let solver = RfcSolver::new(rg.build());
        let mut sink = CollectSink::new();
        let outcome = solver
            .enumerate(
                &EnumQuery::new(model).with_threads(ThreadCount::Serial),
                &mut sink,
            )
            .unwrap();
        prop_assert_eq!(outcome.termination, EnumTermination::Complete);
        prop_assert!(verify::is_maximal_fair_clique_set(
            solver.graph(),
            sink.cliques(),
            model
        ));
        let mut got: Vec<Vec<VertexId>> = sink
            .into_cliques()
            .into_iter()
            .map(|c| c.vertices)
            .collect();
        got.sort();
        let want: Vec<Vec<VertexId>> =
            brute_force_all_maximal_fair_cliques(solver.graph(), model)
                .into_iter()
                .map(|c| c.vertices)
                .collect();
        prop_assert_eq!(got, want, "{}", model);
    }
}
