//! Cross-checks of the branch-and-bound search against the two independent baselines
//! (Bron–Kerbosch sweep and brute force) on randomized workloads.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rfc_core::baseline::{bron_kerbosch_max_fair_clique, brute_force_max_fair_clique};
use rfc_core::prelude::*;
use rfc_core::verify;
use rfc_datasets::synthetic::{erdos_renyi, plant_cliques, PlantedClique};

fn param_grid() -> Vec<FairCliqueParams> {
    let mut out = Vec::new();
    for k in 1..=3usize {
        for delta in 0..=3usize {
            out.push(FairCliqueParams::new(k, delta).unwrap());
        }
    }
    out
}

/// Small dense random graphs: MaxRFC must equal the brute-force optimum exactly.
#[test]
fn matches_brute_force_on_small_random_graphs() {
    for seed in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(6..15);
        let p = rng.gen_range(0.25..0.7);
        let g = erdos_renyi(n, p, 0.5, seed.wrapping_mul(31).wrapping_add(7));
        for &params in &param_grid() {
            let exact = max_fair_clique(&g, params, &SearchConfig::default())
                .best
                .map(|c| c.size());
            let brute = brute_force_max_fair_clique(&g, params).map(|c| c.size());
            assert_eq!(exact, brute, "seed {seed}, n {n}, {params}");
        }
    }
}

/// Mid-size sparse graphs with planted cliques: MaxRFC must equal the Bron–Kerbosch
/// sweep (which is exact but slower) and return a verifiable solution.
#[test]
fn matches_bron_kerbosch_on_planted_instances() {
    for seed in 0..5u64 {
        let background = erdos_renyi(150, 0.03, 0.5, seed.wrapping_add(100));
        let cliques = [
            PlantedClique {
                count_a: 6,
                count_b: 4,
            },
            PlantedClique {
                count_a: 3,
                count_b: 5,
            },
        ];
        let (g, _) = plant_cliques(&background, &cliques, seed.wrapping_add(200));
        for (k, delta) in [(2usize, 1usize), (3, 2), (4, 2), (3, 0)] {
            let params = FairCliqueParams::new(k, delta).unwrap();
            let exact = max_fair_clique(&g, params, &SearchConfig::default());
            let bk = bron_kerbosch_max_fair_clique(&g, params);
            assert_eq!(
                exact.best.as_ref().map(|c| c.size()),
                bk.as_ref().map(|c| c.size()),
                "seed {seed}, {params}"
            );
            if let Some(best) = &exact.best {
                assert!(verify::is_fair_and_clique(&g, &best.vertices, params));
            }
        }
    }
}

/// The basic configuration (no advanced bounds, no heuristic) is slower but must be just
/// as exact.
#[test]
fn basic_configuration_is_exact_too() {
    for seed in 0..6u64 {
        let g = erdos_renyi(12, 0.5, 0.5, seed.wrapping_add(400));
        for (k, delta) in [(1usize, 1usize), (2, 1), (2, 2)] {
            let params = FairCliqueParams::new(k, delta).unwrap();
            let basic = max_fair_clique(&g, params, &SearchConfig::basic())
                .best
                .map(|c| c.size());
            let brute = brute_force_max_fair_clique(&g, params).map(|c| c.size());
            assert_eq!(basic, brute, "seed {seed}, {params}");
        }
    }
}

/// Disabling the reductions must not change the answer either.
#[test]
fn search_without_reductions_is_exact() {
    for seed in 0..6u64 {
        let g = erdos_renyi(14, 0.45, 0.5, seed.wrapping_add(900));
        let params = FairCliqueParams::new(2, 1).unwrap();
        let config = SearchConfig {
            reductions: ReductionConfig::none(),
            ..SearchConfig::default()
        };
        let no_red = max_fair_clique(&g, params, &config).best.map(|c| c.size());
        let brute = brute_force_max_fair_clique(&g, params).map(|c| c.size());
        assert_eq!(no_red, brute, "seed {seed}");
    }
}
