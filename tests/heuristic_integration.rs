//! Integration behaviour of the heuristics: validity, quality relative to the exact
//! optimum, and usefulness of the returned upper bound.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rfc_core::baseline::brute_force_max_fair_clique;
use rfc_core::heuristic::{colorful_deg_heur, deg_heur};
use rfc_core::prelude::*;
use rfc_core::verify;
use rfc_datasets::synthetic::{erdos_renyi, plant_cliques, PlantedClique};
use rfc_datasets::PaperDataset;

#[test]
fn heuristics_always_return_valid_fair_cliques() {
    for seed in 0..15u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(10..40);
        let p = rng.gen_range(0.15..0.6);
        let g = erdos_renyi(n, p, 0.5, seed.wrapping_add(600));
        for (k, delta) in [(1usize, 1usize), (2, 1), (2, 2), (3, 2)] {
            let params = FairCliqueParams::new(k, delta).unwrap();
            let cfg = HeuristicConfig::default();
            for c in [
                deg_heur(&g, params, &cfg),
                colorful_deg_heur(&g, params, &cfg),
                heur_rfc(&g, params, &cfg).best,
            ]
            .into_iter()
            .flatten()
            {
                assert!(
                    verify::is_fair_and_clique(&g, &c.vertices, params),
                    "seed {seed}, {params}"
                );
            }
        }
    }
}

#[test]
fn heuristic_never_exceeds_optimum_and_bound_never_undercuts_it() {
    for seed in 0..10u64 {
        let g = erdos_renyi(13, 0.5, 0.5, seed.wrapping_add(700));
        for (k, delta) in [(1usize, 1usize), (2, 1), (2, 0)] {
            let params = FairCliqueParams::new(k, delta).unwrap();
            let opt = brute_force_max_fair_clique(&g, params)
                .map(|c| c.size())
                .unwrap_or(0);
            let out = heur_rfc(&g, params, &HeuristicConfig::default());
            if let Some(found) = &out.best {
                assert!(found.size() <= opt, "seed {seed} {params}");
                assert!(out.upper_bound >= opt, "seed {seed} {params}");
            }
        }
    }
}

/// On planted instances the heuristic should get close to the optimum (this is the
/// behaviour Fig. 8 reports: differences of at most ~6).
#[test]
fn heuristic_quality_on_planted_cliques() {
    let background = erdos_renyi(300, 0.02, 0.5, 42);
    let (g, _) = plant_cliques(
        &background,
        &[PlantedClique {
            count_a: 10,
            count_b: 9,
        }],
        43,
    );
    let params = FairCliqueParams::new(4, 2).unwrap();
    let exact = max_fair_clique(&g, params, &SearchConfig::default())
        .best
        .map(|c| c.size())
        .unwrap();
    let heur = heur_rfc(&g, params, &HeuristicConfig::default())
        .best
        .map(|c| c.size())
        .unwrap_or(0);
    assert!(heur >= params.min_size());
    assert!(exact >= 19);
    assert!(
        exact - heur <= 6,
        "heuristic {heur} too far below exact {exact}"
    );
}

/// The warm start must reduce (or at least not increase) the number of explored branches
/// on a non-trivial dataset analog.
#[test]
fn warm_start_reduces_search_effort_on_dataset_analog() {
    let spec = PaperDataset::Aminer.spec();
    let g = spec.generate();
    let params = FairCliqueParams::new(spec.default_k, spec.default_delta).unwrap();
    let cold = max_fair_clique(&g, params, &SearchConfig::with_bounds(Default::default()));
    let warm = max_fair_clique(&g, params, &SearchConfig::full(Default::default()));
    assert_eq!(
        cold.best.as_ref().map(|c| c.size()),
        warm.best.as_ref().map(|c| c.size())
    );
    assert!(warm.stats.branches <= cold.stats.branches);
    assert!(warm.stats.heuristic_size.is_some());
}
