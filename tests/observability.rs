//! Integration tests for the observability layer: tracing must never change
//! answers, traced spans must balance and nest, and the per-stage durations
//! must account for the solve's wall time.

use rfc_core::prelude::*;
use rfc_datasets::case_study::CaseStudy;
use rfc_graph::json::JsonValue;
use rfc_obs::trace::{self, BufferSink};

fn nba_graph() -> AttributedGraph {
    CaseStudy::ALL
        .iter()
        .find(|c| c.name().eq_ignore_ascii_case("nba"))
        .expect("nba case study")
        .generate()
        .graph
}

fn serial_query(model: FairnessModel) -> Query {
    Query::new(model).with_config(SearchConfig::default().with_threads(ThreadCount::Serial))
}

/// One parsed trace event.
struct Event {
    ev: String,
    id: u64,
    parent: Option<u64>,
    name: String,
    dur_us: Option<u64>,
}

fn parse_events(lines: &[String]) -> Vec<Event> {
    lines
        .iter()
        .map(|line| {
            let v = JsonValue::parse(line).expect("trace line parses");
            Event {
                ev: v
                    .get("ev")
                    .and_then(JsonValue::as_str)
                    .expect("ev field")
                    .to_string(),
                id: v.get("id").and_then(JsonValue::as_u64).expect("id field"),
                parent: v.get("parent").and_then(JsonValue::as_u64),
                name: v
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .expect("name field")
                    .to_string(),
                dur_us: v.get("dur_us").and_then(JsonValue::as_u64),
            }
        })
        .collect()
}

#[test]
fn tracing_does_not_change_answers_and_spans_account_for_the_solve() {
    let graph = nba_graph();
    let query = serial_query(FairnessModel::Relative { k: 5, delta: 3 });

    // Baseline: tracer disabled (the default).
    let solver = RfcSolver::new(graph.clone());
    let baseline = solver.solve(&query).unwrap();

    // Traced run on a fresh solver (same graph, no shared reduction cache).
    let (sink, lines) = BufferSink::new();
    let guard = trace::install(Box::new(sink));
    let solver = RfcSolver::new(graph);
    let traced = solver.solve(&query).unwrap();
    drop(guard);

    // Differential: identical answers. Serial solves are deterministic, so the
    // vertex sets must match exactly, not just the sizes.
    assert_eq!(traced.termination, baseline.termination);
    assert_eq!(
        traced.best().map(|c| c.vertices.clone()),
        baseline.best().map(|c| c.vertices.clone())
    );
    assert_eq!(traced.stats.branches, baseline.stats.branches);

    // Structural checks on the captured trace.
    let events = parse_events(&lines.lock().unwrap());
    let opens: Vec<&Event> = events.iter().filter(|e| e.ev == "open").collect();
    let closes: Vec<&Event> = events.iter().filter(|e| e.ev == "close").collect();
    assert!(!opens.is_empty(), "trace captured nothing");
    assert_eq!(opens.len(), closes.len(), "unbalanced spans");
    for close in &closes {
        assert!(
            opens
                .iter()
                .any(|o| o.id == close.id && o.name == close.name),
            "close without a matching open: {} #{}",
            close.name,
            close.id
        );
        assert!(close.dur_us.is_some(), "close without dur_us");
    }
    // Every non-root span's parent was opened (nesting is well-formed).
    for open in &opens {
        if let Some(parent) = open.parent {
            assert!(
                opens.iter().any(|o| o.id == parent),
                "span {} #{} has unknown parent {parent}",
                open.name,
                open.id
            );
        }
    }

    // The root solve span exists, and its direct children (reduce / heuristic /
    // search) account for most of its duration without exceeding it.
    let root = closes
        .iter()
        .find(|e| e.name == "solve" && e.parent.is_none())
        .expect("root solve span");
    let root_dur = root.dur_us.unwrap();
    let child_sum: u64 = closes
        .iter()
        .filter(|e| e.parent == Some(root.id))
        .map(|e| e.dur_us.unwrap())
        .sum();
    assert!(
        child_sum <= root_dur,
        "children ({child_sum} µs) exceed the root solve span ({root_dur} µs)"
    );
    let phases: Vec<&str> = closes
        .iter()
        .filter(|e| e.parent == Some(root.id))
        .map(|e| e.name.as_str())
        .collect();
    for phase in ["reduce", "search"] {
        assert!(
            phases.contains(&phase),
            "missing {phase} span in {phases:?}"
        );
    }
    // Component spans nest under the search span.
    let search = closes
        .iter()
        .find(|e| e.name == "search" && e.parent == Some(root.id))
        .unwrap();
    assert!(
        closes
            .iter()
            .any(|e| e.name == "component" && e.parent == Some(search.id)),
        "no component span under search"
    );

    // The human-readable summary reports the same phases.
    let summary = traced.trace_summary();
    assert!(summary.contains("reduction"), "{summary}");
    assert!(summary.contains("search"), "{summary}");
}

#[test]
fn enumerate_trace_balances_and_answers_match() {
    let graph = nba_graph();
    let query = EnumQuery::new(FairnessModel::Relative { k: 5, delta: 3 })
        .with_threads(ThreadCount::Serial);

    let solver = RfcSolver::new(graph.clone());
    let mut count = CountSink::new();
    let baseline = solver.enumerate(&query, &mut count).unwrap();

    let (sink, lines) = BufferSink::new();
    let guard = trace::install(Box::new(sink));
    let solver = RfcSolver::new(graph);
    let mut count = CountSink::new();
    let traced = solver.enumerate(&query, &mut count).unwrap();
    drop(guard);

    assert_eq!(traced.emitted, baseline.emitted);
    let events = parse_events(&lines.lock().unwrap());
    let opens = events.iter().filter(|e| e.ev == "open").count();
    let closes = events.iter().filter(|e| e.ev == "close").count();
    assert!(opens > 0 && opens == closes, "unbalanced enumerate trace");
    assert!(
        events
            .iter()
            .any(|e| e.ev == "close" && e.name == "enumerate" && e.parent.is_none()),
        "no root enumerate span"
    );
}
