//! Serial and parallel searches must agree on the optimum.
//!
//! The parallel search (`ThreadCount::Fixed(n)` / `Auto`) shares one incumbent across
//! worker threads and dispatches components largest-first; none of that may change the
//! *size* of the returned maximum fair clique — only which of several same-size optima
//! is reported. This suite pins that contract on every fixture, on multi-component
//! synthetic graphs from `rfc-datasets`, and on the case studies, for every
//! [`BranchOrder`].
//!
//! The thread counts under test are env-driven so CI can sweep them:
//! `RFC_TEST_THREADS=4` tests exactly 4 workers (1 = the serial path), unset tests
//! 2 and 4.

use rfc_core::prelude::*;
use rfc_datasets::case_study::CaseStudy;
use rfc_datasets::synthetic::{disjoint_union, erdos_renyi, plant_cliques, PlantedClique};
use rfc_graph::fixtures;

const ORDERS: [BranchOrder; 3] = [
    BranchOrder::ColorfulCore,
    BranchOrder::Degeneracy,
    BranchOrder::VertexId,
];

/// Thread counts to exercise, from `RFC_TEST_THREADS` (see module docs).
fn thread_counts() -> Vec<usize> {
    match std::env::var("RFC_TEST_THREADS") {
        Ok(v) => vec![v
            .parse()
            .expect("RFC_TEST_THREADS must be a thread count such as 1 or 4")],
        Err(_) => vec![2, 4],
    }
}

fn config(order: BranchOrder, threads: ThreadCount, heuristic: bool) -> SearchConfig {
    SearchConfig {
        branch_order: order,
        use_heuristic: heuristic,
        threads,
        ..SearchConfig::default()
    }
}

/// Asserts serial and parallel searches agree on `g` for the given parameters, and
/// that every returned clique actually is a relative fair clique.
fn assert_serial_parallel_agree(g: &AttributedGraph, params: FairCliqueParams, label: &str) {
    for order in ORDERS {
        for heuristic in [false, true] {
            let serial = max_fair_clique(g, params, &config(order, ThreadCount::Serial, heuristic));
            let serial_size = serial.best.as_ref().map(|c| c.size());
            if let Some(clique) = &serial.best {
                assert!(
                    rfc_core::verify::is_relative_fair_clique(g, &clique.vertices, params),
                    "{label}: serial clique invalid ({order:?})"
                );
            }
            for &n in &thread_counts() {
                let threads = if n <= 1 {
                    ThreadCount::Serial
                } else {
                    ThreadCount::Fixed(n)
                };
                let parallel = max_fair_clique(g, params, &config(order, threads, heuristic));
                assert_eq!(
                    serial_size,
                    parallel.best.as_ref().map(|c| c.size()),
                    "{label}: optimum differs ({order:?}, heuristic={heuristic}, {n} threads)"
                );
                if let Some(clique) = &parallel.best {
                    assert!(
                        rfc_core::verify::is_relative_fair_clique(g, &clique.vertices, params),
                        "{label}: parallel clique invalid ({order:?}, {n} threads)"
                    );
                }
                // Threading must not change the component partition itself.
                assert_eq!(
                    serial.stats.components_searched, parallel.stats.components_searched,
                    "{label}: component count diverged ({order:?}, {n} threads)"
                );
            }
        }
    }
}

/// A multi-component synthetic workload: several ER blobs, each with one planted fair
/// clique of a different size, so the optimum hides in exactly one component and the
/// shared incumbent has real cross-component work to do.
fn multi_component_graph() -> AttributedGraph {
    let blobs: Vec<AttributedGraph> = [(4usize, 41u64), (5, 42), (3, 43), (6, 44)]
        .iter()
        .map(|&(half, seed)| {
            let background = erdos_renyi(120, 0.04, 0.5, seed);
            let planted = PlantedClique {
                count_a: half,
                count_b: half,
            };
            plant_cliques(&background, &[planted], seed ^ 0xfeed).0
        })
        .collect();
    disjoint_union(&blobs)
}

#[test]
fn fixtures_agree_across_thread_counts() {
    for (g, label) in [
        (fixtures::fig1_graph(), "fig1"),
        (fixtures::fig2_graph(), "fig2"),
        (fixtures::two_cliques_with_bridge(8, 6), "bridge"),
        (fixtures::balanced_clique(10), "balanced-clique"),
    ] {
        for (k, delta) in [(1usize, 1usize), (2, 1), (3, 2)] {
            let params = FairCliqueParams::new(k, delta).unwrap();
            assert_serial_parallel_agree(&g, params, label);
        }
    }
}

#[test]
fn multi_component_synthetic_agrees_across_thread_counts() {
    let g = multi_component_graph();
    for (k, delta) in [(2usize, 1usize), (3, 1)] {
        let params = FairCliqueParams::new(k, delta).unwrap();
        assert_serial_parallel_agree(&g, params, "multi-component");
    }
    // The biggest planted clique (6 + 6) must be found no matter the thread count.
    let params = FairCliqueParams::new(3, 1).unwrap();
    for &n in &thread_counts() {
        let threads = if n <= 1 {
            ThreadCount::Serial
        } else {
            ThreadCount::Fixed(n)
        };
        let outcome = max_fair_clique(
            &g,
            params,
            &config(BranchOrder::ColorfulCore, threads, true),
        );
        assert!(outcome.best.expect("planted clique exists").size() >= 12);
    }
}

#[test]
fn case_studies_agree_across_thread_counts() {
    for case in CaseStudy::ALL {
        let cs = case.generate();
        let params = FairCliqueParams::new(cs.default_k, cs.default_delta).unwrap();
        let serial = max_fair_clique(
            &cs.graph,
            params,
            &config(BranchOrder::ColorfulCore, ThreadCount::Serial, true),
        );
        for &n in &thread_counts() {
            let parallel = max_fair_clique(
                &cs.graph,
                params,
                &config(
                    BranchOrder::ColorfulCore,
                    ThreadCount::Fixed(n.max(1)),
                    true,
                ),
            );
            assert_eq!(
                serial.best.as_ref().map(|c| c.size()),
                parallel.best.as_ref().map(|c| c.size()),
                "{} with {n} threads",
                case.name()
            );
        }
    }
}

#[test]
fn weak_and_strong_models_agree_in_parallel() {
    use rfc_core::search::{max_strong_fair_clique, max_weak_fair_clique};
    let g = multi_component_graph();
    for &n in &thread_counts() {
        let serial = SearchConfig::default().with_threads(ThreadCount::Serial);
        let parallel = SearchConfig::default().with_threads(ThreadCount::Fixed(n.max(2)));
        for k in [2usize, 3] {
            assert_eq!(
                max_weak_fair_clique(&g, k, &serial).best.map(|c| c.size()),
                max_weak_fair_clique(&g, k, &parallel)
                    .best
                    .map(|c| c.size()),
                "weak, k={k}, {n} threads"
            );
            assert_eq!(
                max_strong_fair_clique(&g, k, &serial)
                    .best
                    .map(|c| c.size()),
                max_strong_fair_clique(&g, k, &parallel)
                    .best
                    .map(|c| c.size()),
                "strong, k={k}, {n} threads"
            );
        }
    }
}

/// The adversarial single-component workload for the intra-component work stealing:
/// exactly one connected component, so every parallel win must come from subtree
/// splitting. Serial and parallel searches must agree here like everywhere else, for
/// every order and thread count in the sweep.
#[test]
fn one_big_component_agrees_across_thread_counts() {
    use rfc_datasets::synthetic::{one_big_component, BigComponentConfig};
    let spec = BigComponentConfig {
        n: 220,
        edge_prob: 16.0 / 220.0,
        community: 64,
        community_prob: 0.45,
        planted_half: 8,
        prob_a: 0.5,
    };
    let (g, planted) = one_big_component(&spec, 33);
    let params = FairCliqueParams::new(3, 1).unwrap();
    assert_serial_parallel_agree(&g, params, "one-big-component");
    // The planted fair clique is the component's optimum; no thread count may miss it.
    for &n in &thread_counts() {
        let threads = if n <= 1 {
            ThreadCount::Serial
        } else {
            ThreadCount::Fixed(n)
        };
        let outcome = max_fair_clique(
            &g,
            params,
            &config(BranchOrder::ColorfulCore, threads, false),
        );
        assert!(
            outcome.best.expect("planted clique exists").size() >= planted.len(),
            "{n} threads missed the planted clique"
        );
    }
}

/// Top-k membership is canonical, not first-come: serial and parallel solves must
/// return *identical clique sets*, not just identical sizes, even though worker
/// interleaving changes the order in which ties reach the pool.
#[test]
fn top_k_sets_are_identical_serial_vs_parallel() {
    let g = multi_component_graph();
    for k in [3usize, 5] {
        let fairness = FairnessModel::Relative { k: 2, delta: 1 };
        let solver = RfcSolver::new(g.clone());
        let sets = |threads: ThreadCount| -> Vec<Vec<VertexId>> {
            let query = Query::new(fairness)
                .with_objective(Objective::TopK(k))
                .with_config(SearchConfig {
                    threads,
                    use_heuristic: false,
                    ..SearchConfig::default()
                });
            let solution = solver.solve(&query).expect("valid query");
            solution
                .cliques
                .iter()
                .map(|c| {
                    let mut v = c.vertices.clone();
                    v.sort_unstable();
                    v
                })
                .collect()
        };
        let serial = sets(ThreadCount::Serial);
        assert!(!serial.is_empty(), "top-{k} found nothing");
        for &n in &thread_counts() {
            let parallel = sets(if n <= 1 {
                ThreadCount::Serial
            } else {
                ThreadCount::Fixed(n)
            });
            assert_eq!(
                serial, parallel,
                "top-{k} clique sets diverged at {n} threads"
            );
        }
    }
}

/// `elapsed_micros` is wall-clock time, `cpu_micros` summed worker busy time. Before
/// the accounting fix a 4-worker solve summed per-worker clocks into `elapsed_micros`
/// and could report several times the real wall time; pin both semantics.
#[test]
fn stats_wall_clock_never_exceeds_external_measurement() {
    let g = multi_component_graph();
    let params = FairCliqueParams::new(3, 1).unwrap();

    let serial = max_fair_clique(
        &g,
        params,
        &config(BranchOrder::ColorfulCore, ThreadCount::Serial, false),
    );
    // A serial run's busy time covers a sub-interval of the call.
    assert!(serial.stats.cpu_micros > 0);
    assert!(serial.stats.cpu_micros <= serial.stats.elapsed_micros);

    for &n in &thread_counts() {
        let threads = if n <= 1 {
            ThreadCount::Serial
        } else {
            ThreadCount::Fixed(n)
        };
        let started = std::time::Instant::now();
        let outcome = max_fair_clique(
            &g,
            params,
            &config(BranchOrder::ColorfulCore, threads, false),
        );
        let external = started.elapsed().as_micros() as u64;
        assert!(
            outcome.stats.elapsed_micros <= external,
            "{n} threads: reported {}µs wall > {}µs measured around the call \
             (per-worker clocks were summed?)",
            outcome.stats.elapsed_micros,
            external
        );
        assert!(outcome.stats.cpu_micros > 0, "{n} threads: no busy time");
    }
}
