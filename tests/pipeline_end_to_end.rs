//! End-to-end integration tests spanning all crates: dataset generation → reduction →
//! heuristic → exact search → verification.

use rfc_core::prelude::*;
use rfc_core::verify;
use rfc_datasets::case_study::CaseStudy;
use rfc_datasets::PaperDataset;

/// The planted team of each case study is the maximum fair clique; the full pipeline
/// must recover a fair clique at least that large and verify as maximal.
#[test]
fn case_studies_recover_planted_teams() {
    for case in CaseStudy::ALL {
        let cs = case.generate();
        let params = FairCliqueParams::new(cs.default_k, cs.default_delta).unwrap();
        let outcome = max_fair_clique(&cs.graph, params, &SearchConfig::default());
        let best = outcome
            .best
            .unwrap_or_else(|| panic!("{}: no fair clique found", case.name()));
        assert!(
            best.size() >= cs.planted_team.len(),
            "{}: found {} < planted {}",
            case.name(),
            best.size(),
            cs.planted_team.len()
        );
        assert!(verify::is_relative_fair_clique(
            &cs.graph,
            &best.vertices,
            params
        ));
    }
}

/// On a full-size dataset analog the pipeline must find at least the best fair
/// sub-clique of the largest planted clique, and the reductions must keep that clique.
#[test]
fn paper_dataset_analog_end_to_end() {
    let spec = PaperDataset::Themarker.spec();
    let (graph, planted) = spec.generate_with_ground_truth();
    let params = FairCliqueParams::new(spec.default_k, spec.default_delta).unwrap();

    // Expected lower bound: the fair sub-clique extractable from the largest planted
    // clique.
    let counts = graph.attribute_counts_of(&planted[0]);
    let expected = counts
        .best_fair_subset_size(params.k, params.delta)
        .expect("the planted clique supports the default parameters");

    let outcome = max_fair_clique(&graph, params, &SearchConfig::default());
    let best = outcome.best.expect("a fair clique exists");
    assert!(
        best.size() >= expected,
        "found {} but the planted clique guarantees {expected}",
        best.size()
    );
    assert!(verify::is_fair_and_clique(&graph, &best.vertices, params));

    // The reduction statistics must be monotone and non-trivial on this graph.
    let stages = &outcome.stats.reduction.stages;
    assert_eq!(stages.len(), 3);
    assert!(stages[0].edges >= stages[1].edges);
    assert!(stages[1].edges >= stages[2].edges);
    assert!(
        stages[2].edges < outcome.stats.reduction.original_edges,
        "the reductions should remove something on a power-law background"
    );
}

/// Different search configurations (bounds, heuristic, branch order) must agree on the
/// optimum for a mid-size instance.
#[test]
fn all_configurations_agree_on_case_study() {
    let cs = CaseStudy::Nba.generate();
    let params = FairCliqueParams::new(cs.default_k, cs.default_delta).unwrap();
    let mut sizes = Vec::new();
    for extra in rfc_core::bounds::ExtraBound::ALL {
        for use_heuristic in [false, true] {
            let config = SearchConfig {
                bounds: BoundConfig::with_extra(extra),
                use_heuristic,
                ..SearchConfig::default()
            };
            let size = max_fair_clique(&cs.graph, params, &config)
                .best
                .map(|c| c.size())
                .unwrap_or(0);
            sizes.push(size);
        }
    }
    assert!(
        sizes.windows(2).all(|w| w[0] == w[1]),
        "configurations disagree: {sizes:?}"
    );
    assert!(sizes[0] >= cs.planted_team.len());
}

/// The heuristic upper bound reported by HeurRFC must dominate the exact optimum.
#[test]
fn heuristic_upper_bound_dominates_exact_optimum() {
    let cs = CaseStudy::Imdb.generate();
    let params = FairCliqueParams::new(cs.default_k, cs.default_delta).unwrap();
    let heur = heur_rfc(&cs.graph, params, &HeuristicConfig::default());
    let exact = max_fair_clique(&cs.graph, params, &SearchConfig::default())
        .best
        .map(|c| c.size())
        .unwrap_or(0);
    assert!(heur.upper_bound >= exact);
    if let Some(h) = heur.best {
        assert!(h.size() <= exact);
    }
}
