//! Integration tests for the racing portfolio + anytime engine
//! ([`RfcSolver::solve_portfolio`]):
//!
//! * the portfolio agrees with the plain single-configuration solver on every
//!   fixture graph and fairness model, with exactly one winning member;
//! * under an exhausted budget the pooled incumbent is at least as good as the
//!   single-configuration best-so-far, and the reported optimality gap is a
//!   valid certificate (finite, `gap == 0` iff the solve completed);
//! * the first member to prove optimality cancels the rest (observed through
//!   the anytime improver, which can only ever stop by being cancelled);
//! * every clique the portfolio returns verifies against the original graph.

use rfc_core::prelude::*;
use rfc_core::verify;
use rfc_datasets::synthetic::erdos_renyi;
use rfc_graph::fixtures;

fn fixture_graphs() -> Vec<AttributedGraph> {
    vec![
        fixtures::fig1_graph(),
        fixtures::fig2_graph(),
        fixtures::balanced_clique(7),
        fixtures::two_cliques_with_bridge(8, 6),
    ]
}

fn serial(query: Query) -> Query {
    let config = query.config.clone().with_threads(ThreadCount::Serial);
    query.with_config(config)
}

/// A query whose search starts from nothing: no heuristic warm start, so a
/// zero-node budget genuinely exhausts instead of getting bound-certified.
fn cold(query: Query) -> Query {
    let config = SearchConfig {
        use_heuristic: false,
        ..query.config.clone()
    };
    serial(query.with_config(config))
}

#[test]
fn portfolio_agrees_with_the_single_config_solver_on_all_models() {
    for graph in fixture_graphs() {
        let solver = RfcSolver::new(graph);
        for model in [
            FairnessModel::Relative { k: 2, delta: 1 },
            FairnessModel::Weak { k: 2 },
            FairnessModel::Strong { k: 2 },
        ] {
            let plain = solver.solve(&serial(Query::new(model))).unwrap();
            let outcome = solver
                .solve_portfolio(&serial(Query::new(model)), &PortfolioConfig::new(4))
                .unwrap();
            let racing = &outcome.solution;
            assert_eq!(racing.termination, plain.termination, "{model}");
            assert_eq!(racing.best_size(), plain.best_size(), "{model}");
            if racing.termination == Termination::Optimal {
                assert_eq!(racing.optimality_gap(), Some(0), "{model}");
                let winners = outcome.members.iter().filter(|m| m.winner).count();
                assert_eq!(winners, 1, "exactly one member wins ({model})");
            }
            for clique in &racing.cliques {
                assert!(verify::is_fair_clique_under(
                    solver.graph(),
                    &clique.vertices,
                    model
                ));
            }
        }
    }
}

/// Thread counts to exercise, from `RFC_TEST_THREADS` (CI sweeps 1 and 4;
/// unset tests 2 and 4).
fn thread_counts() -> Vec<usize> {
    match std::env::var("RFC_TEST_THREADS") {
        Ok(v) => vec![v
            .parse()
            .expect("RFC_TEST_THREADS must be a thread count such as 1 or 4")],
        Err(_) => vec![2, 4],
    }
}

#[test]
fn portfolio_answers_are_thread_count_invariant() {
    // The base configuration's thread pool is split across members; whatever
    // the split, the racing answer must stay the serial optimum.
    let graph = erdos_renyi(150, 0.2, 0.5, 11);
    let solver = RfcSolver::new(graph);
    let model = FairnessModel::Relative { k: 2, delta: 1 };
    let expected = solver.solve(&serial(Query::new(model))).unwrap();
    for threads in thread_counts() {
        let config = SearchConfig::default().with_threads(ThreadCount::Fixed(threads));
        let outcome = solver
            .solve_portfolio(
                &Query::new(model).with_config(config),
                &PortfolioConfig::new(3).with_anytime(true),
            )
            .unwrap();
        assert_eq!(outcome.solution.termination, Termination::Optimal);
        assert_eq!(
            outcome.solution.best_size(),
            expected.best_size(),
            "{threads} threads"
        );
        for clique in &outcome.solution.cliques {
            assert!(verify::is_fair_clique_under(
                solver.graph(),
                &clique.vertices,
                model
            ));
        }
    }
}

#[test]
fn budget_bound_portfolio_is_at_least_as_good_as_the_single_config() {
    // One big-ish ER component: hard enough that 200 nodes do not finish it.
    let graph = erdos_renyi(300, 0.12, 0.5, 21);
    let solver = RfcSolver::new(graph);
    let model = FairnessModel::Relative { k: 2, delta: 1 };
    let budget = Budget::unlimited().with_node_limit(200);

    let single = solver
        .solve(&cold(Query::new(model).with_budget(budget)))
        .unwrap();
    let outcome = solver
        .solve_portfolio(
            &cold(Query::new(model).with_budget(budget)),
            &PortfolioConfig::new(4).with_anytime(true),
        )
        .unwrap();
    let pooled = &outcome.solution;

    // Member 0 runs the caller's configuration verbatim on the shared pool, so
    // the pooled best can only match or beat the single-configuration run.
    assert!(
        pooled.best_size() >= single.best_size(),
        "portfolio {:?} < single {:?}",
        pooled.best_size(),
        single.best_size()
    );
    if pooled.termination == Termination::BudgetExhausted {
        // A certified, finite gap: upper bound present and no smaller than the
        // incumbent.
        let ub = pooled
            .upper_bound
            .expect("budget-bound solves carry a bound");
        let gap = pooled.optimality_gap().expect("gap derives from the bound");
        assert_eq!(gap, ub - pooled.best_size());
        assert!(outcome.members.iter().all(|m| !m.winner));
    }
    for clique in &pooled.cliques {
        assert!(verify::is_fair_clique_under(
            solver.graph(),
            &clique.vertices,
            model
        ));
    }
}

#[test]
fn optimality_gap_is_zero_iff_the_solve_completed() {
    let solver = RfcSolver::new(fixtures::fig1_graph());
    let model = FairnessModel::Relative { k: 3, delta: 1 };

    // Complete run: gap 0.
    let done = solver
        .solve_portfolio(&serial(Query::new(model)), &PortfolioConfig::new(3))
        .unwrap()
        .solution;
    assert_eq!(done.termination, Termination::Optimal);
    assert_eq!(done.optimality_gap(), Some(0));

    // Starved run: either it gets bound-certified (gap 0 and Optimal) or it
    // exhausts with a strictly positive gap — never a zero gap on an
    // incomplete answer.
    let starved = solver
        .solve_portfolio(
            &cold(Query::new(model).with_budget(Budget::unlimited().with_node_limit(0))),
            &PortfolioConfig::new(3),
        )
        .unwrap()
        .solution;
    match starved.termination {
        Termination::Optimal | Termination::Infeasible => {
            assert_eq!(starved.optimality_gap(), Some(0))
        }
        Termination::BudgetExhausted | Termination::Cancelled => {
            assert!(starved.optimality_gap().is_none_or(|gap| gap > 0))
        }
    }
}

#[test]
fn first_optimal_finish_cancels_the_other_members() {
    // The anytime improver never halts on its own under an unlimited budget —
    // the only way its thread exits is a sibling's victory cancelling it. A
    // `Cancelled` anytime report is therefore direct evidence the winner's
    // cancellation fan-out fired.
    let solver = RfcSolver::new(fixtures::fig1_graph());
    let outcome = solver
        .solve_portfolio(
            &serial(Query::new(FairnessModel::Relative { k: 3, delta: 1 })),
            &PortfolioConfig::new(2).with_anytime(true),
        )
        .unwrap();
    assert_eq!(outcome.solution.termination, Termination::Optimal);
    assert_eq!(outcome.solution.best_size(), 7);
    assert_eq!(outcome.members.iter().filter(|m| m.winner).count(), 1);
    let anytime = outcome
        .members
        .iter()
        .find(|m| m.label == "anytime")
        .expect("anytime member is reported");
    assert!(!anytime.winner);
    assert_eq!(anytime.termination, Termination::Cancelled);
    // Non-winning exact members either finished on their own or were cancelled.
    for member in &outcome.members {
        if !member.winner && member.label != "anytime" {
            assert!(matches!(
                member.termination,
                Termination::Optimal | Termination::Infeasible | Termination::Cancelled
            ));
        }
    }
}

#[test]
fn anytime_reports_ride_along_and_cliques_always_verify() {
    // Starved exact members + anytime improver: whatever comes back must be a
    // genuine fair clique of the original graph, and the improver must appear
    // in the member reports exactly once.
    let graph = erdos_renyi(200, 0.15, 0.5, 5);
    let solver = RfcSolver::new(graph);
    let model = FairnessModel::Relative { k: 2, delta: 1 };
    let outcome = solver
        .solve_portfolio(
            &cold(Query::new(model).with_budget(Budget::unlimited().with_node_limit(50))),
            &PortfolioConfig::new(3).with_anytime(true).with_seed(7),
        )
        .unwrap();
    assert_eq!(
        outcome
            .members
            .iter()
            .filter(|m| m.label == "anytime")
            .count(),
        1
    );
    assert_eq!(outcome.members.len(), 4);
    for clique in &outcome.solution.cliques {
        assert!(verify::is_fair_clique_under(
            solver.graph(),
            &clique.vertices,
            model
        ));
    }
    if let Some(ub) = outcome.solution.upper_bound {
        assert!(ub >= outcome.solution.best_size());
    }
}
