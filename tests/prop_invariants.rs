//! Property-based tests (proptest) on randomly generated small attributed graphs.
//!
//! These check the core soundness invariants of the whole stack against the brute-force
//! oracle: exactness of the search, safety of every reduction, validity of every upper
//! bound, feasibility of heuristic output, and properness of the coloring.
//!
//! Reproducibility: the proptest runner derives each test's RNG stream from a
//! committed fixed seed (`proptest::test_runner::FIXED_SEED`) mixed with the test
//! name, so CI runs are deterministic. `PROPTEST_SEED=<u64>` explores a different
//! stream; `PROPTEST_CASES=<n>` overrides the case count configured below.

use proptest::prelude::*;

use rfc_core::baseline::{bron_kerbosch_max_fair_clique, brute_force_max_fair_clique};
use rfc_core::bounds::{instance_upper_bound, BoundConfig, ExtraBound};
use rfc_core::heuristic::{heur_rfc, HeuristicConfig};
use rfc_core::problem::FairCliqueParams;
use rfc_core::reduction::{
    colorful_core::en_colorful_core_reduction, colorful_sup::colorful_sup_reduction,
    en_colorful_sup::en_colorful_sup_reduction,
};
use rfc_core::search::{max_fair_clique, SearchConfig};
use rfc_core::verify;
use rfc_graph::coloring::greedy_coloring;
use rfc_graph::{Attribute, AttributedGraph, GraphBuilder};

/// A compact description of a random attributed graph: per-vertex attribute bits plus
/// one bit per vertex pair.
#[derive(Debug, Clone)]
struct RandomGraph {
    attrs: Vec<bool>,
    edges: Vec<bool>,
}

impl RandomGraph {
    fn build(&self) -> AttributedGraph {
        let n = self.attrs.len();
        let attrs = self
            .attrs
            .iter()
            .map(|&a| if a { Attribute::A } else { Attribute::B })
            .collect();
        let mut b = GraphBuilder::with_attributes(attrs);
        let mut idx = 0usize;
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if self.edges[idx] {
                    b.add_edge(u, v);
                }
                idx += 1;
            }
        }
        b.build().expect("generated graph is valid")
    }
}

fn random_graph(max_n: usize) -> impl Strategy<Value = RandomGraph> {
    (4..=max_n).prop_flat_map(|n| {
        let pairs = n * (n - 1) / 2;
        (
            proptest::collection::vec(any::<bool>(), n),
            proptest::collection::vec(proptest::bool::weighted(0.55), pairs),
        )
            .prop_map(|(attrs, edges)| RandomGraph { attrs, edges })
    })
}

fn params_strategy() -> impl Strategy<Value = FairCliqueParams> {
    (1usize..=3, 0usize..=3).prop_map(|(k, delta)| FairCliqueParams::new(k, delta).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 96,
        .. ProptestConfig::default()
    })]

    /// MaxRFC (default config) is exact and its output verifies as a relative fair
    /// clique; the Bron–Kerbosch baseline agrees.
    #[test]
    fn search_matches_brute_force(rg in random_graph(12), params in params_strategy()) {
        let g = rg.build();
        let brute = brute_force_max_fair_clique(&g, params).map(|c| c.size());
        let exact = max_fair_clique(&g, params, &SearchConfig::default());
        prop_assert_eq!(exact.best.as_ref().map(|c| c.size()), brute);
        let bk = bron_kerbosch_max_fair_clique(&g, params).map(|c| c.size());
        prop_assert_eq!(bk, brute);
        if let Some(best) = &exact.best {
            prop_assert!(verify::is_relative_fair_clique(&g, &best.vertices, params));
        }
    }

    /// Every reduction stage preserves the optimum.
    #[test]
    fn reductions_are_safe(rg in random_graph(12), params in params_strategy()) {
        let g = rg.build();
        let before = brute_force_max_fair_clique(&g, params).map(|c| c.size());
        for reduced in [
            en_colorful_core_reduction(&g, params.k),
            colorful_sup_reduction(&g, params.k),
            en_colorful_sup_reduction(&g, params.k),
        ] {
            let after = brute_force_max_fair_clique(&reduced, params).map(|c| c.size());
            prop_assert_eq!(before, after);
        }
    }

    /// Every upper bound dominates the optimum on the full-graph instance.
    #[test]
    fn bounds_dominate_optimum(rg in random_graph(12), params in params_strategy()) {
        let g = rg.build();
        let opt = brute_force_max_fair_clique(&g, params).map(|c| c.size()).unwrap_or(0);
        let all: Vec<u32> = g.vertices().collect();
        for extra in ExtraBound::ALL {
            let ub = instance_upper_bound(&g, &all, params, &BoundConfig::with_extra(extra));
            prop_assert!(ub >= opt, "{} = {} < {}", extra.label(), ub, opt);
        }
    }

    /// Heuristic output is always a valid fair clique no larger than the optimum, and
    /// its reported upper bound is no smaller than the optimum.
    #[test]
    fn heuristic_is_feasible_and_bounded(rg in random_graph(14), params in params_strategy()) {
        let g = rg.build();
        let opt = brute_force_max_fair_clique(&g, params).map(|c| c.size()).unwrap_or(0);
        let out = heur_rfc(&g, params, &HeuristicConfig::default());
        if let Some(found) = &out.best {
            prop_assert!(verify::is_fair_and_clique(&g, &found.vertices, params));
            prop_assert!(found.size() <= opt);
            prop_assert!(out.upper_bound >= opt);
        }
    }

    /// The greedy coloring is always proper and uses at least as many colors as the
    /// clique number implied by any fair clique.
    #[test]
    fn coloring_is_proper(rg in random_graph(14)) {
        let g = rg.build();
        let coloring = greedy_coloring(&g);
        prop_assert!(coloring.is_proper(&g));
        prop_assert!(coloring.num_colors <= g.max_degree() + 1);
    }

    /// The colorful k-core is nested across k and contained in the plain k-core logic
    /// of the reduction (monotonicity of the peeling).
    #[test]
    fn colorful_cores_are_nested(rg in random_graph(14)) {
        let g = rg.build();
        let coloring = greedy_coloring(&g);
        let mut previous: Option<Vec<u32>> = None;
        for k in (0..4usize).rev() {
            let current = rfc_graph::colorful::colorful_k_core_vertices(&g, &coloring, k);
            if let Some(prev) = &previous {
                // prev was computed for k+1 and must be a subset of the k-core.
                prop_assert!(prev.iter().all(|v| current.contains(v)));
            }
            previous = Some(current);
        }
    }
}
