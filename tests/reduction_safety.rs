//! Safety of the graph reductions: no reduction stage may change the maximum fair
//! clique (Lemmas 1–4).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rfc_core::baseline::brute_force_max_fair_clique;
use rfc_core::prelude::*;
use rfc_core::reduction::{
    apply_reductions,
    colorful_core::{colorful_core_reduction, en_colorful_core_reduction},
    colorful_sup::colorful_sup_reduction,
    en_colorful_sup::en_colorful_sup_reduction,
};
use rfc_datasets::synthetic::erdos_renyi;
use rfc_graph::AttributedGraph;

fn optimum(g: &AttributedGraph, params: FairCliqueParams) -> Option<usize> {
    brute_force_max_fair_clique(g, params).map(|c| c.size())
}

/// Each individual reduction preserves the optimum on random small graphs.
#[test]
fn individual_reductions_preserve_optimum() {
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(8..16);
        let p = rng.gen_range(0.3..0.7);
        let g = erdos_renyi(n, p, 0.5, seed.wrapping_add(55));
        for (k, delta) in [(1usize, 1usize), (2, 0), (2, 1), (2, 2), (3, 1)] {
            let params = FairCliqueParams::new(k, delta).unwrap();
            let before = optimum(&g, params);
            let reductions: [(&str, AttributedGraph); 4] = [
                ("ColorfulCore", colorful_core_reduction(&g, k)),
                ("EnColorfulCore", en_colorful_core_reduction(&g, k)),
                ("ColorfulSup", colorful_sup_reduction(&g, k)),
                ("EnColorfulSup", en_colorful_sup_reduction(&g, k)),
            ];
            for (name, reduced) in &reductions {
                let after = optimum(reduced, params);
                assert_eq!(
                    before, after,
                    "{name} changed the optimum (seed {seed}, n {n}, {params})"
                );
            }
        }
    }
}

/// The full pipeline preserves the optimum and never grows the graph.
#[test]
fn full_pipeline_preserves_optimum_and_shrinks() {
    for seed in 0..8u64 {
        let g = erdos_renyi(14, 0.5, 0.5, seed.wrapping_add(70));
        for (k, delta) in [(2usize, 1usize), (3, 1), (3, 2)] {
            let params = FairCliqueParams::new(k, delta).unwrap();
            let (reduced, stats) = apply_reductions(&g, params, &ReductionConfig::default());
            assert!(reduced.num_edges() <= g.num_edges());
            let mut prev = stats.original_edges;
            for s in &stats.stages {
                assert!(s.edges <= prev, "stage {} grew the edge count", s.stage);
                prev = s.edges;
            }
            assert_eq!(
                optimum(&g, params),
                optimum(&reduced, params),
                "seed {seed}, {params}"
            );
        }
    }
}

/// The enhanced variants are at least as aggressive as their plain counterparts.
#[test]
fn enhanced_reductions_dominate_plain_ones() {
    for seed in 0..6u64 {
        let g = erdos_renyi(40, 0.2, 0.5, seed.wrapping_add(500));
        for k in 1..=4usize {
            let core = colorful_core_reduction(&g, k);
            let en_core = en_colorful_core_reduction(&g, k);
            assert!(
                en_core.num_edges() <= core.num_edges(),
                "seed {seed}, k {k}"
            );
            let sup = colorful_sup_reduction(&g, k);
            let en_sup = en_colorful_sup_reduction(&g, k);
            assert!(en_sup.num_edges() <= sup.num_edges(), "seed {seed}, k {k}");
        }
    }
}

/// Reductions are idempotent: applying a stage twice gives the same graph as once.
#[test]
fn reductions_are_idempotent() {
    for seed in 0..4u64 {
        let g = erdos_renyi(30, 0.25, 0.5, seed.wrapping_add(1000));
        for k in 1..=3usize {
            let once = en_colorful_sup_reduction(&g, k);
            let twice = en_colorful_sup_reduction(&once, k);
            assert_eq!(once.num_edges(), twice.num_edges(), "seed {seed}, k {k}");
            let core_once = en_colorful_core_reduction(&g, k);
            let core_twice = en_colorful_core_reduction(&core_once, k);
            assert_eq!(core_once.num_edges(), core_twice.num_edges());
        }
    }
}
