//! Scale-tier integration tests: the disk-backed `.rfcg` path must be
//! behaviorally identical to the in-memory path.
//!
//! Three layers of evidence:
//!
//! * a proptest round-trip — any random attributed graph survives
//!   `write_rfcg` → [`DiskCsr`] → `to_graph` bit-exactly in both open modes, and
//!   the out-of-core fair-core peel computes the *same* survivor set whether the
//!   store is the disk CSR or the materialized [`AttributedGraph`];
//! * a deterministic differential sweep over `(k, δ)` configurations and
//!   attribute skews of generated power-law instances, checking that
//!   [`reduce_store`] (peel → extract → exact pipeline) produces identical
//!   residuals from both stores;
//! * an end-to-end run: a generated instance with a planted fair clique is
//!   loaded from disk, peeled out of core, and solved to the planted optimum,
//!   with the resident footprint of the residual asserted to be a small
//!   fraction of the store's own resident index — the full graph is never
//!   materialized on the solve path.

use proptest::prelude::*;

use rfc_core::problem::{FairCliqueParams, FairnessModel};
use rfc_core::reduction::streaming::{fair_core_peel, reduce_store};
use rfc_core::reduction::ReductionConfig;
use rfc_core::solver::Query;
use rfc_core::ScaleSolver;
use rfc_datasets::scale::{generate_scale_rfcg, ScaleConfig};
use rfc_graph::disk::{write_rfcg, DiskCsr};
use rfc_graph::store::GraphStore;
use rfc_graph::{Attribute, AttributedGraph, GraphBuilder};

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static FILE_COUNTER: AtomicU64 = AtomicU64::new(0);

fn temp_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("rfc_scale_tier_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let id = FILE_COUNTER.fetch_add(1, Ordering::Relaxed);
    dir.join(format!("{}_{tag}_{id}.rfcg", std::process::id()))
}

/// A compact description of a random attributed graph (same idiom as
/// `prop_invariants.rs`): per-vertex attribute bits plus one bit per pair.
#[derive(Debug, Clone)]
struct RandomGraph {
    attrs: Vec<bool>,
    edges: Vec<bool>,
}

impl RandomGraph {
    fn build(&self) -> AttributedGraph {
        let n = self.attrs.len();
        let attrs = self
            .attrs
            .iter()
            .map(|&a| if a { Attribute::A } else { Attribute::B })
            .collect();
        let mut b = GraphBuilder::with_attributes(attrs);
        let mut idx = 0usize;
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if self.edges[idx] {
                    b.add_edge(u, v);
                }
                idx += 1;
            }
        }
        b.build().expect("generated graph is valid")
    }
}

fn random_graph(max_n: usize) -> impl Strategy<Value = RandomGraph> {
    (0..=max_n).prop_flat_map(|n| {
        let pairs = n.saturating_sub(1) * n / 2;
        (
            proptest::collection::vec(any::<bool>(), n),
            proptest::collection::vec(proptest::bool::weighted(0.45), pairs),
        )
            .prop_map(|(attrs, edges)| RandomGraph { attrs, edges })
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        .. ProptestConfig::default()
    })]

    /// Round-trip: memory → `.rfcg` → memory is the identity, in both open
    /// modes, and the disk-backed peel matches the in-memory peel exactly.
    #[test]
    fn rfcg_roundtrip_and_peel_are_store_independent(rg in random_graph(14)) {
        let g = rg.build();
        let path = temp_path("prop");
        let summary = write_rfcg(&g, &path).unwrap();
        prop_assert_eq!(summary.num_vertices, g.num_vertices());
        prop_assert_eq!(summary.num_edges, g.num_edges());

        let streaming = DiskCsr::open(&path).unwrap();
        let resident = DiskCsr::open_resident(&path).unwrap();
        prop_assert_eq!(&streaming.to_graph().unwrap(), &g);
        prop_assert_eq!(&resident.to_graph().unwrap(), &g);

        for k in 1..=3usize {
            let mem = fair_core_peel(&g, k).unwrap();
            let disk = fair_core_peel(&streaming, k).unwrap();
            let disk_res = fair_core_peel(&resident, k).unwrap();
            prop_assert_eq!(&mem.alive, &disk.alive, "k={}", k);
            prop_assert_eq!(&mem.alive, &disk_res.alive, "k={}", k);
            prop_assert_eq!(
                mem.stats.surviving_vertices,
                disk.stats.surviving_vertices
            );
        }
        std::fs::remove_file(&path).ok();
    }
}

/// The full streaming reduction (peel → extract → exact pipeline) is a pure
/// function of the graph, not of the store it reads from: sweep `(k, δ)` and
/// attribute skews over generated power-law instances and compare the disk and
/// memory paths end to end.
#[test]
fn reduce_store_is_identical_on_disk_and_memory_stores() {
    for (seed, prob_a) in [(11u64, 0.5f64), (12, 0.8), (13, 0.2)] {
        let config = ScaleConfig {
            num_vertices: 2_500,
            edges_per_vertex: 4,
            prob_a,
            planted_half: 4,
            reservoir: 512,
            chunk_entries: 1 << 13,
        };
        let path = temp_path("diff");
        let summary = generate_scale_rfcg(&config, seed, &path).unwrap();
        let store = DiskCsr::open(&path).unwrap();
        let g = store.to_graph().unwrap();

        for (k, delta) in [(2usize, 1usize), (3, 0), (3, 2), (4, 1)] {
            let params = FairCliqueParams::new(k, delta).unwrap();
            let rconfig = ReductionConfig::default();

            let disk_peel = fair_core_peel(&store, k).unwrap();
            let mem_peel = fair_core_peel(&g, k).unwrap();
            assert_eq!(
                disk_peel.alive, mem_peel.alive,
                "seed={seed} prob_a={prob_a} k={k}: peel survivor sets differ"
            );
            // The planted clique always survives the peel when it is large
            // enough for the criterion (clique gives k per attribute for k<=4).
            if k <= config.planted_half {
                for &v in &summary.planted {
                    assert!(
                        disk_peel.alive[v as usize],
                        "seed={seed} k={k}: peel dropped planted vertex {v}"
                    );
                }
            }

            let from_disk = reduce_store(&store, params, &rconfig).unwrap();
            let from_mem = reduce_store(&g, params, &rconfig).unwrap();
            assert_eq!(
                from_disk.graph, from_mem.graph,
                "seed={seed} prob_a={prob_a} k={k} δ={delta}: residuals differ"
            );
            assert_eq!(from_disk.vertex_map, from_mem.vertex_map);
            assert_eq!(from_disk.stats.exact.stages.len(), 3);
        }
        std::fs::remove_file(&path).ok();
    }
}

/// End to end: generate a power-law instance with a planted balanced clique to
/// `.rfcg`, open it, peel out of core, and solve — the solver must recover the
/// planted optimum in store ids while the resident residual stays a small
/// fraction of the input.
#[test]
fn planted_optimum_is_recovered_from_disk_with_bounded_residual() {
    let n = 40_000;
    let config = ScaleConfig {
        num_vertices: n,
        edges_per_vertex: 6,
        prob_a: 0.5,
        planted_half: 10,
        reservoir: 1 << 12,
        chunk_entries: 1 << 16,
    };
    let path = temp_path("e2e");
    let summary = generate_scale_rfcg(&config, 42, &path).unwrap();
    assert_eq!(summary.csr.num_vertices, n);
    assert_eq!(summary.planted.len(), 20);

    let store = DiskCsr::open(&path).unwrap();
    let k = 8;
    let solver = ScaleSolver::from_store(&store, k).unwrap();

    // The background (average degree ~12) cannot satisfy the fair-core
    // criterion for k=8, so the peel must collapse the graph to a small
    // neighborhood of the planted clique.
    let stats = solver.stats();
    assert_eq!(stats.store_vertices, n);
    // The peel cascaded (this background dies over multiple waves) and every
    // adjacency byte it touched was served from disk in streaming mode.
    assert!(
        stats.peel.rounds >= 1,
        "peel removed vertices but no rounds"
    );
    assert!(
        stats.disk_read_bytes > 0,
        "streaming store reported no disk reads"
    );
    assert!(
        stats.residual_vertices < n / 10,
        "residual kept {}/{} vertices — peel did not shrink the instance",
        stats.residual_vertices,
        n
    );
    // Peak resident graph memory downstream of the peel is the residual, and
    // it must be far below even the store's own resident index (offsets +
    // attributes), let alone a fully materialized graph.
    assert!(
        solver.residual_resident_bytes() < store.resident_bytes(),
        "residual ({} bytes) outgrew the store index ({} bytes)",
        solver.residual_resident_bytes(),
        store.resident_bytes()
    );

    let query = Query::new(FairnessModel::Relative { k, delta: 1 });
    let solution = solver.solve(&query).unwrap();
    let best = solution.best().expect("planted clique must be found");
    assert_eq!(
        best.vertices, summary.planted,
        "optimum is the planted clique"
    );
    assert_eq!(best.counts.a(), 10);
    assert_eq!(best.counts.b(), 10);
    std::fs::remove_file(&path).ok();
}

/// Regression (PR 10 bugfix): `Budget`/`CancelToken` reach the scale tier. A
/// construction whose out-of-core peel trips the control returns the typed
/// `ScaleError` instead of silently running to completion, and the unlimited
/// constructor is unaffected.
#[test]
fn budgeted_scale_construction_returns_typed_errors() {
    use rfc_core::solver::{Budget, CancelToken};
    use rfc_core::ScaleError;
    use std::time::Duration;

    let g = fixtures_graph_for_budget();
    let path = temp_path("budgeted");
    write_rfcg(&g, &path).unwrap();
    let store = DiskCsr::open(&path).unwrap();

    // Pre-cancelled token: the peel must not start.
    let token = CancelToken::new();
    token.cancel();
    let err =
        ScaleSolver::from_store_budgeted(&store, 2, &Budget::unlimited(), Some(token)).unwrap_err();
    assert!(matches!(err, ScaleError::Cancelled), "{err}");
    assert!(err.to_string().contains("cancelled"));

    // A zero wall-clock budget trips between peel waves.
    let err = ScaleSolver::from_store_budgeted(
        &store,
        2,
        &Budget::unlimited().with_time_limit(Duration::ZERO),
        None,
    )
    .unwrap_err();
    assert!(matches!(err, ScaleError::BudgetExhausted), "{err}");

    // A pure node limit never applies to construction (no branch nodes exist yet),
    // and the solver built under it matches the unlimited one.
    let budgeted =
        ScaleSolver::from_store_budgeted(&store, 2, &Budget::unlimited().with_node_limit(0), None)
            .unwrap();
    let unlimited = ScaleSolver::from_store(&store, 2).unwrap();
    assert_eq!(
        budgeted.residual().num_edges(),
        unlimited.residual().num_edges()
    );
    let query = Query::new(FairnessModel::Relative { k: 2, delta: 1 });
    let solution = unlimited.solve(&query).unwrap();
    assert_eq!(
        solution.best().map(|c| c.size()),
        budgeted
            .solve(&Query::new(FairnessModel::Relative { k: 2, delta: 1 }))
            .unwrap()
            .best()
            .map(|c| c.size())
    );
}

/// A small deterministic graph with a known fair clique for the budget tests.
fn fixtures_graph_for_budget() -> AttributedGraph {
    rfc_graph::fixtures::fig1_graph()
}
