//! End-to-end tests of the `maxfaircliqued` daemon over real TCP sockets: an
//! in-process [`rfc_serve::Server`] bound to `127.0.0.1:0`, driven by plain
//! `TcpStream` clients speaking the JSONL protocol.
//!
//! The contract under test:
//!
//! * daemon answers are **identical in substance** to the direct library API
//!   (differential solve/enumerate checks against a scratch [`RfcSolver`]),
//! * malformed and oversized request lines produce *typed* errors and leave the
//!   connection usable — the daemon never answers bad input by disconnecting,
//! * budget-exhausted queries return verified best-so-far answers,
//! * an `update` from one client is observed by every other client (the registry
//!   is shared state), matching a from-scratch solver on the updated graph,
//! * admission control rejects excess load with a typed `overloaded` error, and
//! * `shutdown` terminates `run()` cleanly.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;

use rfc_core::enumerate::CollectSink;
use rfc_core::prelude::*;
use rfc_graph::fixtures;
use rfc_graph::json::JsonValue;
use rfc_serve::engine::EngineConfig;
use rfc_serve::server::{ServeConfig, Server};

/// A daemon running on an ephemeral port in a background thread, plus the
/// temp directory holding its graph files.
struct TestDaemon {
    addr: std::net::SocketAddr,
    dir: PathBuf,
    thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl TestDaemon {
    fn start(config: ServeConfig) -> TestDaemon {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "rfc-serve-api-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let server = Server::bind(config).expect("bind 127.0.0.1:0");
        let addr = server.local_addr().unwrap();
        let thread = std::thread::spawn(move || server.run());
        TestDaemon {
            addr,
            dir,
            thread: Some(thread),
        }
    }

    fn default_config() -> ServeConfig {
        ServeConfig {
            port: 0,
            ..ServeConfig::default()
        }
    }

    /// Writes a graph into the daemon's temp dir and loads it under `name`.
    fn load(&self, client: &mut Client, name: &str, graph: &AttributedGraph) {
        let path = self.dir.join(format!("{name}.graph"));
        rfc_graph::io::write_graph_to_path(graph, &path).unwrap();
        let response = client.request_one(&format!(
            "{{\"op\":\"load\",\"graph\":\"{name}\",\"path\":\"{}\"}}",
            path.display()
        ));
        assert_eq!(
            response.get("ok").and_then(JsonValue::as_bool),
            Some(true),
            "load failed: {response}"
        );
    }

    fn connect(&self) -> Client {
        let stream = TcpStream::connect(self.addr).expect("connect to test daemon");
        stream.set_nodelay(true).unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    /// Issues `shutdown` and joins the server thread.
    fn shutdown(mut self) {
        let mut client = self.connect();
        let response = client.request_one("{\"op\":\"shutdown\"}");
        assert_eq!(response.get("ok").and_then(JsonValue::as_bool), Some(true));
        self.thread
            .take()
            .unwrap()
            .join()
            .expect("server thread panicked")
            .expect("server run() failed");
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

impl Drop for TestDaemon {
    fn drop(&mut self) {
        if let Some(thread) = self.thread.take() {
            // Best-effort shutdown so a failing test doesn't leak the thread.
            if let Ok(mut stream) = TcpStream::connect(self.addr) {
                let _ = writeln!(stream, "{{\"op\":\"shutdown\"}}");
                let _ = stream.flush();
            }
            let _ = thread.join();
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// One protocol connection.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn send(&mut self, line: &str) {
        // One segment per request line (split writes stall on delayed ACKs).
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .unwrap();
        self.writer.flush().unwrap();
    }

    fn read_line(&mut self) -> JsonValue {
        let mut raw = String::new();
        let n = self.reader.read_line(&mut raw).unwrap();
        assert!(n > 0, "daemon closed the connection unexpectedly");
        JsonValue::parse(raw.trim_end()).expect("daemon responses are valid JSON")
    }

    /// Sends a request and reads exactly one (terminal) response line.
    fn request_one(&mut self, line: &str) -> JsonValue {
        self.send(line);
        let response = self.read_line();
        assert!(
            response.get("ok").is_some(),
            "expected a terminal line, got {response}"
        );
        response
    }

    /// Sends a request and reads stream lines up to and including the terminal one.
    fn request_stream(&mut self, line: &str) -> (Vec<JsonValue>, JsonValue) {
        self.send(line);
        let mut stream = Vec::new();
        loop {
            let value = self.read_line();
            if value.get("ok").is_some() {
                return (stream, value);
            }
            stream.push(value);
        }
    }
}

/// Sorted vertex sets of a solve response's cliques.
fn response_clique_sets(response: &JsonValue) -> Vec<Vec<u64>> {
    response
        .get("cliques")
        .and_then(JsonValue::as_array)
        .unwrap()
        .iter()
        .map(|clique| {
            let mut vertices: Vec<u64> = clique
                .get("vertices")
                .and_then(JsonValue::as_array)
                .unwrap()
                .iter()
                .map(|v| v.as_u64().unwrap())
                .collect();
            vertices.sort_unstable();
            vertices
        })
        .collect()
}

#[test]
fn daemon_answers_match_the_direct_library() {
    let daemon = TestDaemon::start(TestDaemon::default_config());
    let mut client = daemon.connect();
    let graph = fixtures::fig1_graph();
    daemon.load(&mut client, "fig1", &graph);
    let direct = RfcSolver::new(graph.clone());

    for (model, request) in [
        (
            FairnessModel::Relative { k: 3, delta: 1 },
            r#"{"op":"solve","graph":"fig1","k":3,"delta":1}"#,
        ),
        (
            FairnessModel::Weak { k: 3 },
            r#"{"op":"solve","graph":"fig1","model":"weak","k":3}"#,
        ),
        (
            FairnessModel::Strong { k: 2 },
            r#"{"op":"solve","graph":"fig1","model":"strong","k":2}"#,
        ),
    ] {
        let expected = direct.solve(&Query::new(model)).unwrap();
        let response = client.request_one(request);
        assert_eq!(
            response.get("ok").and_then(JsonValue::as_bool),
            Some(true),
            "{request} -> {response}"
        );
        let sizes: Vec<u64> = response_clique_sets(&response)
            .iter()
            .map(|c| c.len() as u64)
            .collect();
        let expected_sizes: Vec<u64> = expected.cliques.iter().map(|c| c.size() as u64).collect();
        assert_eq!(sizes, expected_sizes, "{model:?}");
        // Every daemon clique verifies under the model on the real graph.
        for vertices in response_clique_sets(&response) {
            let vertices: Vec<VertexId> = vertices.iter().map(|&v| v as VertexId).collect();
            assert!(rfc_core::verify::is_fair_clique_under(
                &graph, &vertices, model
            ));
        }
    }

    // Enumeration: the daemon's stream equals the direct sink's clique sets.
    let model = FairnessModel::Relative { k: 2, delta: 1 };
    let mut sink = CollectSink::new();
    direct.enumerate(&EnumQuery::new(model), &mut sink).unwrap();
    let mut expected_sets: Vec<Vec<u64>> = sink
        .cliques()
        .iter()
        .map(|c| {
            let mut vertices: Vec<u64> = c.vertices.iter().map(|&v| v as u64).collect();
            vertices.sort_unstable();
            vertices
        })
        .collect();
    expected_sets.sort();
    let (stream, terminal) =
        client.request_stream(r#"{"op":"enumerate","graph":"fig1","k":2,"delta":1}"#);
    assert_eq!(
        terminal.get("termination").and_then(JsonValue::as_str),
        Some("complete")
    );
    assert_eq!(
        terminal.get("emitted").and_then(JsonValue::as_u64),
        Some(stream.len() as u64)
    );
    let mut daemon_sets: Vec<Vec<u64>> = stream
        .iter()
        .map(|line| {
            let mut vertices: Vec<u64> = line
                .get("clique")
                .and_then(|c| c.get("vertices"))
                .and_then(JsonValue::as_array)
                .unwrap()
                .iter()
                .map(|v| v.as_u64().unwrap())
                .collect();
            vertices.sort_unstable();
            vertices
        })
        .collect();
    daemon_sets.sort();
    assert_eq!(daemon_sets, expected_sets);

    daemon.shutdown();
}

#[test]
fn malformed_and_oversized_lines_get_typed_errors_not_disconnects() {
    let daemon = TestDaemon::start(ServeConfig {
        max_line_bytes: 256,
        ..TestDaemon::default_config()
    });
    let mut client = daemon.connect();
    daemon.load(&mut client, "fig1", &fixtures::fig1_graph());

    for (line, code) in [
        ("this is not json", "parse_error"),
        ("{\"op\":\"teleport\"}", "bad_request"),
        (
            "{\"op\":\"solve\",\"graph\":\"nope\",\"k\":2}",
            "unknown_graph",
        ),
        (
            "{\"op\":\"solve\",\"graph\":\"fig1\",\"k\":0}",
            "invalid_params",
        ),
        (
            "{\"op\":\"solve\",\"graph\":\"fig1\",\"k\":2,\"model\":\"psychic\"}",
            "invalid_params",
        ),
    ] {
        let response = client.request_one(line);
        assert_eq!(
            response.get("ok").and_then(JsonValue::as_bool),
            Some(false),
            "{line}"
        );
        assert_eq!(
            response.get("error").and_then(JsonValue::as_str),
            Some(code),
            "{line}"
        );
    }

    // A line over the 256-byte bound: typed error, connection stays in sync.
    let huge = format!(
        "{{\"op\":\"solve\",\"graph\":\"{}\",\"k\":2}}",
        "x".repeat(400)
    );
    let response = client.request_one(&huge);
    assert_eq!(
        response.get("error").and_then(JsonValue::as_str),
        Some("line_too_long")
    );

    // After all that abuse, the same connection still answers real queries.
    let response = client.request_one(r#"{"op":"solve","graph":"fig1","k":3,"delta":1}"#);
    assert_eq!(response.get("ok").and_then(JsonValue::as_bool), Some(true));
    assert_eq!(
        response_clique_sets(&response)[0].len(),
        7,
        "fig. 1 maximum relative fair clique has 7 vertices"
    );

    daemon.shutdown();
}

#[test]
fn budget_exhaustion_returns_verified_best_so_far() {
    let daemon = TestDaemon::start(TestDaemon::default_config());
    let mut client = daemon.connect();
    let graph = fixtures::fig1_graph();
    daemon.load(&mut client, "fig1", &graph);

    // A node budget of 0 exhausts immediately. On fig. 1 the heuristic warm
    // start (size 7) meets the colorful upper bound, so the answer comes back
    // bound-certified: `optimal` with a zero gap despite the exhausted budget.
    // Either way the budget never produces an unverified clique.
    let response =
        client.request_one(r#"{"op":"solve","graph":"fig1","k":3,"delta":1,"node_limit":0}"#);
    assert_eq!(
        response.get("termination").and_then(JsonValue::as_str),
        Some("optimal")
    );
    assert_eq!(
        response.get("optimality_gap").and_then(JsonValue::as_u64),
        Some(0)
    );
    assert_eq!(
        response.get("upper_bound").and_then(JsonValue::as_u64),
        Some(7)
    );
    let model = FairnessModel::Relative { k: 3, delta: 1 };
    for vertices in response_clique_sets(&response) {
        let vertices: Vec<VertexId> = vertices.iter().map(|&v| v as VertexId).collect();
        assert!(rfc_core::verify::is_fair_clique_under(
            &graph, &vertices, model
        ));
    }

    // A model the warm start cannot certify (strong fairness on fig. 1 has no
    // tight colorful bound) genuinely exhausts, with the bound as its gap.
    let response = client
        .request_one(r#"{"op":"solve","graph":"fig1","model":"strong","k":3,"node_limit":0}"#);
    let termination = response.get("termination").and_then(JsonValue::as_str);
    if termination == Some("budget_exhausted") {
        let ub = response.get("upper_bound").and_then(JsonValue::as_u64);
        let gap = response.get("optimality_gap").and_then(JsonValue::as_u64);
        assert!(ub.is_some());
        assert!(gap.is_some_and(|g| g > 0));
    } else {
        // Bound-certified here too: then the gap must be zero.
        assert_eq!(termination, Some("optimal"));
        assert_eq!(
            response.get("optimality_gap").and_then(JsonValue::as_u64),
            Some(0)
        );
    }
    let model = FairnessModel::Strong { k: 3 };
    for vertices in response_clique_sets(&response) {
        let vertices: Vec<VertexId> = vertices.iter().map(|&v| v as VertexId).collect();
        assert!(rfc_core::verify::is_fair_clique_under(
            &graph, &vertices, model
        ));
    }

    daemon.shutdown();
}

#[test]
fn updates_from_one_client_are_visible_to_all_others() {
    let daemon = TestDaemon::start(TestDaemon::default_config());
    let mut alice = daemon.connect();
    let mut bob = daemon.connect();
    let graph = fixtures::fig1_graph();
    daemon.load(&mut alice, "shared", &graph);

    // Bob sees the loaded graph immediately (shared registry).
    let before = bob.request_one(r#"{"op":"solve","graph":"shared","k":3,"delta":1}"#);
    assert_eq!(response_clique_sets(&before)[0].len(), 7);

    // Alice removes a vertex of the incumbent clique.
    let victim = response_clique_sets(&before)[0][0];
    let update = alice.request_one(&format!(
        "{{\"op\":\"update\",\"graph\":\"shared\",\"ops\":[{{\"op\":\"remove_vertex\",\"v\":{victim}}}]}}"
    ));
    assert_eq!(update.get("ok").and_then(JsonValue::as_bool), Some(true));

    // Bob's next solve sees the committed update and agrees with scratch.
    let mut scratch_graph = graph;
    let mut delta = rfc_graph::delta::GraphDelta::new();
    delta
        .apply_op(
            &scratch_graph,
            &rfc_graph::delta::UpdateOp::RemoveVertex {
                v: victim as VertexId,
            },
        )
        .unwrap();
    scratch_graph = delta.apply(&scratch_graph);
    let scratch = RfcSolver::new(scratch_graph)
        .solve(&Query::new(FairnessModel::Relative { k: 3, delta: 1 }))
        .unwrap();
    let after = bob.request_one(r#"{"op":"solve","graph":"shared","k":3,"delta":1}"#);
    let daemon_best = response_clique_sets(&after)
        .first()
        .map(|c| c.len())
        .unwrap_or(0);
    let scratch_best = scratch.best().map(|c| c.size()).unwrap_or(0);
    assert_eq!(daemon_best, scratch_best);

    daemon.shutdown();
}

#[test]
fn saturated_daemon_answers_overloaded() {
    // One execution slot, no queue: a slow ping occupies the slot and the next
    // request must be rejected with a typed error, not stalled.
    let daemon = TestDaemon::start(ServeConfig {
        max_active: 1,
        max_queue: 0,
        ..TestDaemon::default_config()
    });
    let mut slow = daemon.connect();
    slow.send(r#"{"op":"ping","sleep_ms":1500}"#);
    // Give the slow ping time to take the slot.
    std::thread::sleep(std::time::Duration::from_millis(200));
    let mut fast = daemon.connect();
    let response = fast.request_one(r#"{"op":"ping"}"#);
    assert_eq!(
        response.get("error").and_then(JsonValue::as_str),
        Some("overloaded"),
        "{response}"
    );
    // stats bypasses admission even while saturated.
    let stats = fast.request_one(r#"{"op":"stats"}"#);
    assert_eq!(stats.get("ok").and_then(JsonValue::as_bool), Some(true));
    assert!(
        stats
            .get("counters")
            .and_then(|c| c.get("overloaded"))
            .and_then(JsonValue::as_u64)
            .unwrap()
            >= 1
    );
    // The slow ping eventually completes fine.
    let response = slow.read_line();
    assert_eq!(response.get("ok").and_then(JsonValue::as_bool), Some(true));

    daemon.shutdown();
}

#[test]
fn bounded_caches_report_evictions_in_stats() {
    let daemon = TestDaemon::start(ServeConfig {
        engine: EngineConfig {
            cache_capacity: Some(1),
            ..EngineConfig::default()
        },
        ..TestDaemon::default_config()
    });
    let mut client = daemon.connect();
    // Two disjoint balanced cliques of *different* sizes -> two distinct
    // canonical cache keys fighting over a capacity of 1. (Identical components
    // would share one key: the cache canonicalizes per component.)
    let graph = {
        let attrs: Vec<Attribute> = (0..10)
            .map(|i| {
                if i % 2 == 0 {
                    Attribute::A
                } else {
                    Attribute::B
                }
            })
            .collect();
        let mut builder = GraphBuilder::with_attributes(attrs);
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                builder.add_edge(u, v);
            }
        }
        for u in 6..10u32 {
            for v in (u + 1)..10 {
                builder.add_edge(u, v);
            }
        }
        builder.build().unwrap()
    };
    daemon.load(&mut client, "two", &graph);
    let solve = client.request_one(r#"{"op":"solve","graph":"two","k":2,"delta":1}"#);
    assert_eq!(solve.get("ok").and_then(JsonValue::as_bool), Some(true));
    let stats = client.request_one(r#"{"op":"stats"}"#);
    let cache = stats.get("graphs").and_then(JsonValue::as_array).unwrap()[0]
        .get("cache")
        .and_then(|c| c.get("solve"))
        .cloned()
        .unwrap();
    assert_eq!(cache.get("len").and_then(JsonValue::as_u64), Some(1));
    assert!(
        cache.get("evictions").and_then(JsonValue::as_u64).unwrap() >= 1,
        "capacity 1 with >= 2 components must evict: {cache}"
    );

    daemon.shutdown();
}

#[test]
fn concurrent_clients_all_get_correct_answers() {
    let daemon = TestDaemon::start(TestDaemon::default_config());
    let mut setup = daemon.connect();
    let graph = fixtures::fig1_graph();
    daemon.load(&mut setup, "fig1", &graph);
    let expected = RfcSolver::new(graph)
        .solve(&Query::new(FairnessModel::Relative { k: 3, delta: 1 }))
        .unwrap()
        .best()
        .unwrap()
        .size();

    std::thread::scope(|scope| {
        for _ in 0..8 {
            let daemon = &daemon;
            scope.spawn(move || {
                let mut client = daemon.connect();
                for _ in 0..5 {
                    let response =
                        client.request_one(r#"{"op":"solve","graph":"fig1","k":3,"delta":1}"#);
                    assert_eq!(response.get("ok").and_then(JsonValue::as_bool), Some(true));
                    assert_eq!(response_clique_sets(&response)[0].len(), expected);
                }
            });
        }
    });

    // The shared cache served most of those queries.
    let mut client = daemon.connect();
    let stats = client.request_one(r#"{"op":"stats"}"#);
    let cache = stats.get("graphs").and_then(JsonValue::as_array).unwrap()[0]
        .get("cache")
        .and_then(|c| c.get("solve"))
        .cloned()
        .unwrap();
    assert!(
        cache.get("hits").and_then(JsonValue::as_u64).unwrap() >= 30,
        "40 identical solves over a shared registry must mostly hit the cache: {cache}"
    );

    daemon.shutdown();
}
