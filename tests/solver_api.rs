//! Integration tests for the reusable, budgeted, multi-query [`RfcSolver`] API:
//!
//! * one preprocessing pass serving many queries across all three fairness models,
//!   checked against a model-native brute-force oracle on the fixture graphs;
//! * budgets (`time_limit` / `node_limit`) terminating early with
//!   `Termination::BudgetExhausted` and a *verified* best-so-far clique;
//! * cancellation, top-k objectives, batch solving, serial determinism, and the
//!   `max_fair_clique` compatibility wrapper agreeing with the solver.

use std::time::Duration;

use rfc_core::baseline::brute_force_max_fair_clique_model;
use rfc_core::prelude::*;
use rfc_core::verify;
use rfc_datasets::synthetic::erdos_renyi;
use rfc_graph::fixtures;

fn fixture_graphs() -> Vec<AttributedGraph> {
    vec![
        fixtures::fig1_graph(),
        fixtures::fig2_graph(),
        fixtures::balanced_clique(7),
        fixtures::two_cliques_with_bridge(8, 6),
    ]
}

fn serial(query: Query) -> Query {
    let config = query.config.clone().with_threads(ThreadCount::Serial);
    query.with_config(config)
}

#[test]
fn weak_and_strong_fairness_match_the_brute_force_oracle() {
    for graph in fixture_graphs() {
        let solver = RfcSolver::new(graph);
        for k in 1..=4usize {
            for model in [FairnessModel::Weak { k }, FairnessModel::Strong { k }] {
                let solution = solver.solve(&serial(Query::new(model))).unwrap();
                let oracle = brute_force_max_fair_clique_model(solver.graph(), model);
                assert_eq!(
                    solution.best().map(|c| c.size()),
                    oracle.map(|c| c.size()),
                    "{model} on {:?}",
                    solver.graph().stats()
                );
                match solution.best() {
                    Some(best) => {
                        assert_eq!(solution.termination, Termination::Optimal);
                        assert!(verify::is_fair_clique_under(
                            solver.graph(),
                            &best.vertices,
                            model
                        ));
                        // A maximum fair clique is in particular a maximal one.
                        assert!(verify::is_maximal_fair_clique_under(
                            solver.graph(),
                            &best.vertices,
                            model
                        ));
                    }
                    None => assert_eq!(solution.termination, Termination::Infeasible),
                }
            }
        }
    }
}

#[test]
fn one_solver_serves_mixed_queries_off_shared_preprocessing() {
    let solver = RfcSolver::new(fixtures::fig1_graph());
    let queries = [
        Query::new(FairnessModel::Relative { k: 3, delta: 1 }),
        Query::new(FairnessModel::Strong { k: 3 }),
        Query::new(FairnessModel::Weak { k: 3 }),
        Query::new(FairnessModel::Relative { k: 3, delta: 2 }),
    ];
    let sizes: Vec<Option<usize>> = queries
        .iter()
        .map(|q| {
            solver
                .solve(q)
                .unwrap()
                .best()
                .map(rfc_core::FairClique::size)
        })
        .collect();
    assert_eq!(sizes, vec![Some(7), Some(6), Some(8), Some(8)]);
    // All four queries share k = 3, so exactly one reduction pipeline ran.
    assert_eq!(solver.preprocessing_runs(), 1);
}

#[test]
fn node_budget_exhaustion_returns_a_verified_best_so_far() {
    // Big enough that the exact search genuinely needs many nodes: without the
    // heuristic warm start nothing can prune the tree down to a handful of branches.
    let g = erdos_renyi(60, 0.5, 0.5, 11);
    let solver = RfcSolver::new(g);
    let model = FairnessModel::Relative { k: 2, delta: 1 };
    let unbudgeted = solver.solve(&serial(Query::new(model))).unwrap();
    assert_eq!(unbudgeted.termination, Termination::Optimal);
    assert!(unbudgeted.stats.branches > 50, "workload too easy");

    let budgeted = solver
        .solve(&serial(
            Query::new(model).with_budget(Budget::unlimited().with_node_limit(20)),
        ))
        .unwrap();
    assert_eq!(budgeted.termination, Termination::BudgetExhausted);
    assert!(!budgeted.termination.is_complete());
    assert!(budgeted.stats.branches <= 20);
    let best = budgeted.best().expect("warm start guarantees an incumbent");
    assert!(verify::is_fair_clique_under(
        solver.graph(),
        &best.vertices,
        model
    ));
    assert!(best.size() <= unbudgeted.best().unwrap().size());

    // Budget-limited serial runs are still deterministic.
    let again = solver
        .solve(&serial(
            Query::new(model).with_budget(Budget::unlimited().with_node_limit(20)),
        ))
        .unwrap();
    assert_eq!(again.cliques, budgeted.cliques);
    assert_eq!(again.stats.branches, budgeted.stats.branches);
}

#[test]
fn zero_time_budget_trips_on_the_first_node() {
    let solver = RfcSolver::new(erdos_renyi(60, 0.5, 0.5, 11));
    let model = FairnessModel::Relative { k: 2, delta: 1 };
    let solution = solver
        .solve(&serial(Query::new(model).with_budget(
            Budget::unlimited().with_time_limit(Duration::ZERO),
        )))
        .unwrap();
    assert_eq!(solution.termination, Termination::BudgetExhausted);
    if let Some(best) = solution.best() {
        assert!(verify::is_fair_clique_under(
            solver.graph(),
            &best.vertices,
            model
        ));
    }
}

#[test]
fn cancellation_stops_the_search_and_is_reported() {
    let solver = RfcSolver::new(erdos_renyi(60, 0.5, 0.5, 11));
    let token = CancelToken::new();
    token.cancel();
    let solution = solver
        .solve(&serial(Query::new(FairnessModel::Relative { k: 2, delta: 1 })).with_cancel(token))
        .unwrap();
    assert_eq!(solution.termination, Termination::Cancelled);
}

#[test]
fn top_k_objective_returns_distinct_verified_cliques_best_first() {
    let solver = RfcSolver::new(fixtures::fig1_graph());
    let model = FairnessModel::Relative { k: 3, delta: 1 };
    let solution = solver
        .solve(&serial(
            Query::new(model).with_objective(Objective::TopK(4)),
        ))
        .unwrap();
    assert_eq!(solution.termination, Termination::Optimal);
    let sizes: Vec<usize> = solution.cliques.iter().map(|c| c.size()).collect();
    // The planted 8-clique (5 a's, 3 b's) has five fair 7-subsets; the top 4 are all
    // of size 7.
    assert_eq!(sizes, vec![7, 7, 7, 7]);
    let mut sets: Vec<_> = solution
        .cliques
        .iter()
        .map(|c| c.vertices.clone())
        .collect();
    sets.sort();
    sets.dedup();
    assert_eq!(sets.len(), 4, "top-k cliques must be distinct");
    for clique in &solution.cliques {
        assert!(verify::is_fair_clique_under(
            solver.graph(),
            &clique.vertices,
            model
        ));
    }
}

#[test]
fn batch_solving_matches_individual_queries() {
    let solver = RfcSolver::new(fixtures::fig2_graph());
    let mut queries = Vec::new();
    for k in 1..=3usize {
        queries.push(serial(Query::new(FairnessModel::Weak { k })));
        queries.push(serial(Query::new(FairnessModel::Strong { k })));
        queries.push(serial(Query::new(FairnessModel::Relative { k, delta: 1 })));
    }
    let individual: Vec<Option<usize>> = queries
        .iter()
        .map(|q| {
            solver
                .solve(q)
                .unwrap()
                .best()
                .map(rfc_core::FairClique::size)
        })
        .collect();
    for threads in [
        ThreadCount::Fixed(2),
        ThreadCount::Fixed(4),
        ThreadCount::Auto,
    ] {
        let batch = solver.solve_batch(&queries, threads);
        let batch_sizes: Vec<Option<usize>> = batch
            .into_iter()
            .map(|r| r.unwrap().best().map(rfc_core::FairClique::size))
            .collect();
        assert_eq!(batch_sizes, individual, "threads {threads:?}");
    }
    // One reduction pipeline per distinct k that survives the coloring gate (queries
    // with 2k above the color count are answered infeasible without preprocessing),
    // regardless of how many queries or batch repetitions were served.
    let feasible_ks = (1..=3usize)
        .filter(|k| 2 * k <= solver.num_colors())
        .count();
    assert_eq!(solver.preprocessing_runs(), feasible_ks);
}

#[test]
fn compatibility_wrapper_agrees_with_the_solver() {
    let g = fixtures::fig1_graph();
    let solver = RfcSolver::new(g.clone());
    for (k, delta) in [(1usize, 0usize), (2, 1), (3, 1), (3, 2), (4, 1)] {
        let params = FairCliqueParams::new(k, delta).unwrap();
        let config = SearchConfig::default().with_threads(ThreadCount::Serial);
        let wrapper = max_fair_clique(&g, params, &config);
        let solution = solver
            .solve(&serial(Query::new(FairnessModel::Relative { k, delta })))
            .unwrap();
        assert_eq!(
            wrapper.best.as_ref().map(|c| c.size()),
            solution.best().map(|c| c.size()),
            "(k={k}, δ={delta})"
        );
        // The serial wrapper returns the identical clique, not just the same size.
        assert_eq!(
            wrapper.best.map(|c| c.vertices),
            solution.best().map(|c| c.vertices.clone())
        );
    }
}

#[test]
fn serial_solver_runs_are_fully_reproducible() {
    let solver = RfcSolver::new(fixtures::fig2_graph());
    let query = serial(Query::new(FairnessModel::Relative { k: 2, delta: 1 }));
    let first = solver.solve(&query).unwrap();
    for _ in 0..2 {
        let again = solver.solve(&query).unwrap();
        assert_eq!(again.cliques, first.cliques);
        assert_eq!(again.termination, first.termination);
        assert_eq!(again.stats.branches, first.stats.branches);
        assert_eq!(again.stats.bound_prunes, first.stats.bound_prunes);
        assert_eq!(again.stats.incumbent_updates, first.stats.incumbent_updates);
    }
}

/// Satellite audit (PR 5): `Budget` / `CancelToken` state must not leak between
/// repeated solves on one solver instance.
///
/// Audit result: no leak exists by construction — every `solve`/`enumerate` call
/// builds a fresh `SearchControl` (its deadline is anchored at that call, its node
/// counter and sticky stop flag start at zero), and the only state that *is* shared
/// across queries is a `CancelToken` the caller explicitly clones into several
/// queries, whose stickiness is documented. This regression test pins all of that:
/// a budget-exhausted solve followed by an unlimited solve on the same solver must
/// be exact, reusing the same budgeted `Query` value must re-anchor its deadline
/// rather than inherit the tripped state, and enumeration after an exhausted solve
/// must run to completion.
#[test]
fn exhausted_budgets_do_not_leak_into_later_queries() {
    let solver = RfcSolver::new(fixtures::fig1_graph());
    let model = FairnessModel::Relative { k: 3, delta: 1 };

    // Query 1: node budget exhausted immediately. The heuristic is disabled so the
    // warm start can't meet the colorful upper bound (which would certify the
    // best-so-far as Optimal) — this query must stay genuinely exhausted.
    let mut no_heuristic = SearchConfig::default().with_threads(ThreadCount::Serial);
    no_heuristic.use_heuristic = false;
    let starved = Query::new(model)
        .with_config(no_heuristic)
        .with_budget(Budget::unlimited().with_node_limit(0));
    let first = solver.solve(&starved).unwrap();
    assert_eq!(first.termination, Termination::BudgetExhausted);
    // The reduction still ran, so the colorful bound gives a finite gap.
    assert_eq!(first.upper_bound, Some(7));
    assert_eq!(first.optimality_gap(), Some(7));

    // Query 2 (same solver, fresh unlimited query): must be exact, with a live
    // search — not an inherited sticky stop.
    let full = solver.solve(&serial(Query::new(model))).unwrap();
    assert_eq!(full.termination, Termination::Optimal);
    assert_eq!(full.best().unwrap().size(), 7);
    assert!(
        full.stats.branches > 0,
        "the second search must actually run"
    );

    // Re-running the *same* budgeted query value trips on its own fresh control
    // (deadline/node counter re-anchored per call), not on leftover state: a
    // generous time limit paired with the old zero-node budget still reports
    // exhaustion from the node limit alone, while a pure time limit that was
    // nowhere near expiring solves to optimality every time.
    let timed = serial(Query::new(model))
        .with_budget(Budget::unlimited().with_time_limit(Duration::from_secs(3600)));
    for _ in 0..3 {
        let again = solver.solve(&timed).unwrap();
        assert_eq!(again.termination, Termination::Optimal);
        assert_eq!(again.best().unwrap().size(), 7);
    }
    let starved_again = solver.solve(&starved).unwrap();
    assert_eq!(starved_again.termination, Termination::BudgetExhausted);

    // Enumeration after an exhausted solve runs to completion on the same solver.
    let mut sink = CollectSink::new();
    let outcome = solver
        .enumerate(
            &EnumQuery::new(model).with_threads(ThreadCount::Serial),
            &mut sink,
        )
        .unwrap();
    assert_eq!(outcome.termination, EnumTermination::Complete);
    assert_eq!(outcome.emitted, 5);

    // A cancelled token is sticky *for the queries that share it* (documented), but
    // a token-free query on the same solver is untouched.
    let token = CancelToken::new();
    let cancellable = serial(Query::new(model)).with_cancel(token.clone());
    token.cancel();
    assert_eq!(
        solver.solve(&cancellable).unwrap().termination,
        Termination::Cancelled
    );
    assert_eq!(
        solver.solve(&cancellable).unwrap().termination,
        Termination::Cancelled,
        "token stickiness is shared state by design"
    );
    let clean = solver.solve(&serial(Query::new(model))).unwrap();
    assert_eq!(clean.termination, Termination::Optimal);
}

/// Regression (PR 10 bugfix): the wall-clock budget is anchored at query entry, so a
/// query whose *reduction alone* outlives a tiny `time_limit` returns
/// `BudgetExhausted` promptly — it must not silently extend the budget by the
/// preprocessing time, and the aborted partial pipeline must never be cached.
#[test]
fn time_budget_covers_the_reduction_phase() {
    // Large enough that the reduction pipeline takes well over the budget below.
    let g = erdos_renyi(1500, 0.05, 0.5, 7);
    let solver = RfcSolver::new(g);
    let model = FairnessModel::Relative { k: 2, delta: 1 };

    let starved = serial(Query::new(model))
        .with_budget(Budget::unlimited().with_time_limit(Duration::from_micros(200)));
    let solution = solver.solve(&starved).unwrap();
    assert_eq!(solution.termination, Termination::BudgetExhausted);
    assert!(
        solution.stats.reduction.stages.len() < 3,
        "the pipeline must have been interrupted, got {:?}",
        solution.stats.reduction.stages
    );
    // Nothing sound was computed, so no bound (and no gap) can be reported.
    assert_eq!(solution.upper_bound, None);
    assert_eq!(solution.optimality_gap(), None);
    assert!(solution.best().is_none());
    // The partial pipeline was not cached: the next query runs it from scratch.
    assert_eq!(solver.preprocessing_runs(), 0);
    let full = solver.solve(&serial(Query::new(model))).unwrap();
    assert_eq!(full.termination, Termination::Optimal);
    assert!(!full.reduction_cache_hit);
    assert_eq!(full.stats.reduction.stages.len(), 3);
    assert_eq!(solver.preprocessing_runs(), 1);
}

/// Regression (PR 10 bugfix): a pre-cancelled query stops at entry, before any
/// reduction stage runs.
#[test]
fn pre_cancelled_query_skips_the_reduction() {
    let solver = RfcSolver::new(erdos_renyi(1500, 0.05, 0.5, 7));
    let token = CancelToken::new();
    token.cancel();
    let solution = solver
        .solve(&serial(Query::new(FairnessModel::Relative { k: 2, delta: 1 })).with_cancel(token))
        .unwrap();
    assert_eq!(solution.termination, Termination::Cancelled);
    assert!(solution.stats.reduction.stages.is_empty());
    assert_eq!(solution.upper_bound, None);
    assert_eq!(solver.preprocessing_runs(), 0);
}

/// A budget-starved solve whose warm start already meets the colorful upper bound is
/// *certified*: the solver upgrades the termination to `Optimal`, so a reported gap
/// of zero always means the answer is exact.
#[test]
fn bound_certified_exhaustion_upgrades_to_optimal() {
    let solver = RfcSolver::new(fixtures::fig1_graph());
    let model = FairnessModel::Relative { k: 3, delta: 1 };
    // Heuristic on (default config): it finds the size-7 optimum, which matches the
    // colorful bound of the reduced graph — zero branch nodes needed.
    let solution = solver
        .solve(&serial(Query::new(model)).with_budget(Budget::unlimited().with_node_limit(0)))
        .unwrap();
    assert_eq!(solution.termination, Termination::Optimal);
    assert_eq!(solution.best().unwrap().size(), 7);
    assert_eq!(solution.upper_bound, Some(7));
    assert_eq!(solution.optimality_gap(), Some(0));
    assert!(verify::is_fair_clique_under(
        solver.graph(),
        &solution.best().unwrap().vertices,
        model
    ));
}
